package storage

import (
	"fmt"
	"testing"
)

func TestScanFromZero(t *testing.T) {
	s := Open(&Options{ExtentSize: 32})
	want := []string{"aaaa", "bbbb", "cccc", "dddd", "eeee", "ffff", "gggg", "hhhh", "iiii", "jjjj"}
	for i, w := range want {
		if _, err := s.Append(StreamWAL, uint64(i), []byte(w)); err != nil {
			t.Fatal(err)
		}
	}
	entries, _, err := s.Scan(StreamWAL, Cursor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatalf("scanned %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if string(e.Data) != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, e.Data, want[i])
		}
		if e.Tag != uint64(i) {
			t.Fatalf("entry %d tag = %d, want %d", i, e.Tag, i)
		}
	}
}

func TestScanResumesFromCursor(t *testing.T) {
	s := Open(&Options{ExtentSize: 32})
	for i := 0; i < 10; i++ {
		if _, err := s.Append(StreamWAL, uint64(i), []byte(fmt.Sprintf("rec%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	first, cur, err := s.Scan(StreamWAL, Cursor{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 4 {
		t.Fatalf("batch = %d, want 4", len(first))
	}
	rest, cur2, err := s.Scan(StreamWAL, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 6 {
		t.Fatalf("rest = %d, want 6", len(rest))
	}
	if string(rest[0].Data) != "rec0004" {
		t.Fatalf("resume record = %q, want rec0004", rest[0].Data)
	}
	// Tailing an empty tail returns nothing and an unchanged logical position.
	none, _, err := s.Scan(StreamWAL, cur2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("tail scan = %d entries, want 0", len(none))
	}
	// New appends become visible to the cursor.
	if _, err := s.Append(StreamWAL, 99, []byte("new-rec")); err != nil {
		t.Fatal(err)
	}
	more, _, err := s.Scan(StreamWAL, cur2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(more) != 1 || string(more[0].Data) != "new-rec" {
		t.Fatalf("tail after append = %v", more)
	}
}

func TestScanSkipsReclaimedExtents(t *testing.T) {
	s := Open(&Options{ExtentSize: 16})
	var locs []Loc
	for i := 0; i < 6; i++ {
		loc, _ := s.Append(StreamWAL, uint64(i), []byte("01234567")) // 2 per extent
		locs = append(locs, loc)
	}
	// Reclaim the first extent (no valid data relocated — invalidate first).
	s.Invalidate(locs[0])
	s.Invalidate(locs[1])
	if _, err := s.Reclaim(StreamWAL, locs[0].Extent, nil); err != nil {
		t.Fatal(err)
	}
	entries, _, err := s.Scan(StreamWAL, Cursor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("scan after reclaim = %d entries, want 4", len(entries))
	}
	if entries[0].Tag != 2 {
		t.Fatalf("first surviving tag = %d, want 2", entries[0].Tag)
	}
}

func TestTailCursor(t *testing.T) {
	s := Open(&Options{ExtentSize: 32})
	if cur := s.TailCursor(StreamWAL); cur != (Cursor{}) {
		t.Fatalf("empty stream tail = %+v", cur)
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Append(StreamWAL, uint64(i), []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	cur := s.TailCursor(StreamWAL)
	// Nothing behind the tail is visible from it.
	entries, _, err := s.Scan(StreamWAL, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("tail scan = %d entries, want 0", len(entries))
	}
	// Appends after the cursor are visible.
	if _, err := s.Append(StreamWAL, 9, []byte("after-tail")); err != nil {
		t.Fatal(err)
	}
	entries, _, err = s.Scan(StreamWAL, cur, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || string(entries[0].Data) != "after-tail" {
		t.Fatalf("tail scan after append = %v", entries)
	}
}

func TestDropBefore(t *testing.T) {
	s := Open(&Options{ExtentSize: 16})
	var lastLoc Loc
	for i := 0; i < 8; i++ { // 2 records per extent
		loc, err := s.Append(StreamWAL, uint64(i), []byte("01234567"))
		if err != nil {
			t.Fatal(err)
		}
		lastLoc = loc
	}
	dropped := s.DropBefore(StreamWAL, lastLoc.Extent)
	if len(dropped) == 0 {
		t.Fatal("nothing dropped")
	}
	for _, id := range dropped {
		if id >= lastLoc.Extent {
			t.Fatalf("dropped extent %d >= bound %d", id, lastLoc.Extent)
		}
	}
	// Records at/after the bound survive.
	if _, err := s.Read(lastLoc); err != nil {
		t.Fatalf("read after DropBefore: %v", err)
	}
	// The active extent is never dropped even below the bound.
	s2 := Open(&Options{ExtentSize: 1 << 16})
	if _, err := s2.Append(StreamWAL, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if got := s2.DropBefore(StreamWAL, 99); len(got) != 0 {
		t.Fatalf("active extent dropped: %v", got)
	}
}
