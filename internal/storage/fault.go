package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault-injection layer. The paper's whole premise is surviving cheap shared
// cloud storage whose appends can be slow, fail, or arrive torn (§3, §4);
// BtrLog-style logging stacks show the tail behaviour of the logging path on
// such storage dominates both latency and correctness. A FaultPlan is a
// seeded, deterministic source of injected faults that the Store consults on
// every Append, Read, Scan, and extent Seal, so the WAL, flush, and
// leader–follower paths can be tested against the storage misbehaviour they
// must tolerate in production.

// Errors injected by a FaultPlan.
var (
	// ErrTransient marks a retryable I/O failure: the operation did not
	// happen and may be retried. Consumers match with errors.Is.
	ErrTransient = errors.New("storage: transient I/O error (injected)")

	// ErrTornWrite marks an append that persisted only a prefix of its
	// payload before failing — the tail-of-extent torn write of cheap cloud
	// storage. The caller must treat the write as failed (retry appends a
	// fresh full copy); readers detect the torn prefix by checksum.
	ErrTornWrite = errors.New("storage: torn write (injected)")

	// ErrCrashed is returned for every append after the plan's crash point
	// fires: the writing node is dead mid-flight. Reads keep working —
	// shared storage outlives the node, which is what recovery relies on.
	ErrCrashed = errors.New("storage: node crashed (injected)")

	// ErrExtentLost is returned when reading or scanning an extent the plan
	// has declared permanently lost.
	ErrExtentLost = errors.New("storage: extent lost (injected)")
)

// FaultKind labels an injected fault for the OnInject hook.
type FaultKind int

// The injectable fault classes.
const (
	FaultTransientAppend FaultKind = iota
	FaultTransientRead
	FaultTornWrite
	FaultLatencySpike
	FaultCrash
	FaultExtentLoss
)

// String returns the fault kind's name.
func (k FaultKind) String() string {
	switch k {
	case FaultTransientAppend:
		return "transient-append"
	case FaultTransientRead:
		return "transient-read"
	case FaultTornWrite:
		return "torn-write"
	case FaultLatencySpike:
		return "latency-spike"
	case FaultCrash:
		return "crash"
	case FaultExtentLoss:
		return "extent-loss"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultConfig parameterizes a FaultPlan. All probabilities are in [0, 1]
// and evaluated independently per operation.
type FaultConfig struct {
	// Seed drives the plan's private RNG; the same seed over the same
	// operation sequence reproduces the same faults.
	Seed int64

	// AppendFailProb is the probability an Append fails transiently with
	// nothing persisted.
	AppendFailProb float64

	// TornWriteProb is the probability an Append persists only a prefix of
	// its payload and then fails (a torn tail-of-extent write).
	TornWriteProb float64

	// ReadFailProb is the probability a Read or Scan fails transiently.
	ReadFailProb float64

	// SpikeProb injects SpikeLatency of extra blocking time into an
	// operation (append or read) with this probability.
	SpikeProb    float64
	SpikeLatency time.Duration

	// SealLossProb is the probability that an extent, at the moment it is
	// sealed, is declared permanently lost: subsequent reads and scans of it
	// fail with ErrExtentLost. LossStreams restricts which streams it
	// applies to (empty = all streams).
	SealLossProb float64
	LossStreams  []StreamID

	// CrashAfterAppends, when > 0, arms a crash point: the Nth append
	// (counted across streams, successful or not) persists a torn prefix
	// and fails with ErrCrashed, and every later append fails with
	// ErrCrashed until ClearCrash is called.
	CrashAfterAppends int64
}

// FaultStats counts the faults a plan has injected.
type FaultStats struct {
	TransientAppends int64
	TransientReads   int64
	TornWrites       int64
	LatencySpikes    int64
	Crashes          int64
	ExtentsLost      int64
}

// Total returns the total number of injected faults.
func (s FaultStats) Total() int64 {
	return s.TransientAppends + s.TransientReads + s.TornWrites +
		s.LatencySpikes + s.Crashes + s.ExtentsLost
}

// extentKey identifies an extent across streams for the lost set.
type extentKey struct {
	stream StreamID
	extent ExtentID
}

// FaultPlan is a deterministic, seeded fault source hooked into a Store via
// Options.Faults. It is safe for concurrent use; decisions are drawn from
// one mutex-guarded RNG, so a serialized operation sequence reproduces the
// same faults for the same seed.
type FaultPlan struct {
	// OnInject, when non-nil, is invoked (without the plan lock) for every
	// injected fault — wiring point for metrics counters. Set before the
	// plan is shared.
	OnInject func(FaultKind)

	mu       sync.Mutex
	rng      *rand.Rand
	cfg      FaultConfig
	enabled  bool
	appends  int64
	crashed  bool
	tearNext bool
	lost     map[extentKey]struct{}
	stats    FaultStats
}

// NewFaultPlan returns an armed plan for the given config.
func NewFaultPlan(cfg FaultConfig) *FaultPlan {
	return &FaultPlan{
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		cfg:     cfg,
		enabled: true,
		lost:    make(map[extentKey]struct{}),
	}
}

// SetEnabled arms or disarms probabilistic injection. A disarmed plan still
// remembers lost extents and the crash state (those model storage and node
// state, not active misbehaviour).
func (p *FaultPlan) SetEnabled(on bool) {
	p.mu.Lock()
	p.enabled = on
	p.mu.Unlock()
}

// TearNext forces the next append (on any stream) to be torn, regardless of
// probabilities. Tests use it for deterministic torn-tail scenarios.
func (p *FaultPlan) TearNext() {
	p.mu.Lock()
	p.tearNext = true
	p.mu.Unlock()
}

// ScheduleCrash arms the crash point n appends from now (n >= 1).
func (p *FaultPlan) ScheduleCrash(n int64) {
	p.mu.Lock()
	p.cfg.CrashAfterAppends = p.appends + n
	p.mu.Unlock()
}

// ClearCrash lifts the crash state and disarms the crash point — the
// recovering node attaches to the surviving shared store.
func (p *FaultPlan) ClearCrash() {
	p.mu.Lock()
	p.crashed = false
	p.cfg.CrashAfterAppends = 0
	p.mu.Unlock()
}

// Crashed reports whether the crash point has fired.
func (p *FaultPlan) Crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.crashed
}

// LoseExtent declares an extent permanently lost.
func (p *FaultPlan) LoseExtent(stream StreamID, ext ExtentID) {
	p.mu.Lock()
	p.lost[extentKey{stream, ext}] = struct{}{}
	p.stats.ExtentsLost++
	p.mu.Unlock()
	p.inject(FaultExtentLoss)
}

// RestoreExtent undoes LoseExtent (a repaired replica of the extent).
func (p *FaultPlan) RestoreExtent(stream StreamID, ext ExtentID) {
	p.mu.Lock()
	delete(p.lost, extentKey{stream, ext})
	p.mu.Unlock()
}

// Stats returns a snapshot of the injected-fault counters.
func (p *FaultPlan) Stats() FaultStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *FaultPlan) inject(kind FaultKind) {
	if p.OnInject != nil {
		p.OnInject(kind)
	}
}

// appendOutcome tells Store.Append what to do.
type appendOutcome struct {
	err   error         // nil = proceed normally
	torn  int           // bytes of the payload to persist before failing
	spike time.Duration // extra latency to inject before the outcome
}

// appendDecision draws the fate of one append of n bytes. The append
// counter advances on every call so crash points are positioned in the
// global append order.
func (p *FaultPlan) appendDecision(stream StreamID, n int) appendOutcome {
	p.mu.Lock()
	p.appends++
	if p.crashed {
		p.mu.Unlock()
		return appendOutcome{err: fmt.Errorf("storage: append %v: %w", stream, ErrCrashed)}
	}
	if p.cfg.CrashAfterAppends > 0 && p.appends >= p.cfg.CrashAfterAppends {
		p.crashed = true
		p.stats.Crashes++
		p.stats.TornWrites++
		cut := p.tornCutLocked(n)
		p.mu.Unlock()
		p.inject(FaultCrash)
		return appendOutcome{
			err:  fmt.Errorf("storage: append %v: %w", stream, ErrCrashed),
			torn: cut,
		}
	}
	if !p.enabled && !p.tearNext {
		p.mu.Unlock()
		return appendOutcome{}
	}
	var out appendOutcome
	if p.enabled && p.cfg.SpikeProb > 0 && p.rng.Float64() < p.cfg.SpikeProb {
		out.spike = p.cfg.SpikeLatency
		p.stats.LatencySpikes++
		defer p.inject(FaultLatencySpike)
	}
	switch {
	case p.tearNext || (p.enabled && p.cfg.TornWriteProb > 0 && p.rng.Float64() < p.cfg.TornWriteProb):
		p.tearNext = false
		p.stats.TornWrites++
		out.err = fmt.Errorf("storage: append %v: %w", stream, ErrTornWrite)
		out.torn = p.tornCutLocked(n)
		p.mu.Unlock()
		p.inject(FaultTornWrite)
	case p.enabled && p.cfg.AppendFailProb > 0 && p.rng.Float64() < p.cfg.AppendFailProb:
		p.stats.TransientAppends++
		out.err = fmt.Errorf("storage: append %v: %w", stream, ErrTransient)
		p.mu.Unlock()
		p.inject(FaultTransientAppend)
	default:
		p.mu.Unlock()
	}
	return out
}

// tornCutLocked picks how many payload bytes a torn write persists:
// somewhere in [1, n-1] so the tear is always detectable. Caller holds mu.
func (p *FaultPlan) tornCutLocked(n int) int {
	if n <= 1 {
		return 0
	}
	return 1 + p.rng.Intn(n-1)
}

// readDecision draws the fate of one read/scan touching the given extent
// (extent checks also apply to scans, per traversed extent via extentLost).
func (p *FaultPlan) readDecision(stream StreamID, ext ExtentID) (spike time.Duration, err error) {
	p.mu.Lock()
	if _, dead := p.lost[extentKey{stream, ext}]; dead {
		p.mu.Unlock()
		return 0, fmt.Errorf("storage: read %v/%d: %w", stream, ext, ErrExtentLost)
	}
	if !p.enabled {
		p.mu.Unlock()
		return 0, nil
	}
	if p.cfg.SpikeProb > 0 && p.rng.Float64() < p.cfg.SpikeProb {
		spike = p.cfg.SpikeLatency
		p.stats.LatencySpikes++
		defer p.inject(FaultLatencySpike)
	}
	if p.cfg.ReadFailProb > 0 && p.rng.Float64() < p.cfg.ReadFailProb {
		p.stats.TransientReads++
		p.mu.Unlock()
		p.inject(FaultTransientRead)
		return spike, fmt.Errorf("storage: read %v/%d: %w", stream, ext, ErrTransient)
	}
	p.mu.Unlock()
	return spike, nil
}

// extentLost reports whether the plan has lost the extent (no RNG draw).
func (p *FaultPlan) extentLost(stream StreamID, ext ExtentID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, dead := p.lost[extentKey{stream, ext}]
	return dead
}

// noteSeal gives the plan a chance to lose an extent at the moment it
// seals (SealLossProb), modelling a storage node dying with the extent.
func (p *FaultPlan) noteSeal(stream StreamID, ext ExtentID) {
	p.mu.Lock()
	if !p.enabled || p.cfg.SealLossProb <= 0 || !p.streamEligibleLocked(stream) ||
		p.rng.Float64() >= p.cfg.SealLossProb {
		p.mu.Unlock()
		return
	}
	p.lost[extentKey{stream, ext}] = struct{}{}
	p.stats.ExtentsLost++
	p.mu.Unlock()
	p.inject(FaultExtentLoss)
}

func (p *FaultPlan) streamEligibleLocked(stream StreamID) bool {
	if len(p.cfg.LossStreams) == 0 {
		return true
	}
	for _, s := range p.cfg.LossStreams {
		if s == stream {
			return true
		}
	}
	return false
}
