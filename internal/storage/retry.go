package storage

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// IsTransient reports whether err is worth retrying: the operation failed
// without durable effect (ErrTransient) or with a detectable partial effect
// a retry supersedes (ErrTornWrite — readers discard torn prefixes by
// checksum, so appending a fresh copy is safe).
func IsTransient(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrTornWrite)
}

// RetryPolicy bounds retries of transient storage failures with
// exponential backoff. The zero value retries nothing; DefaultRetry is the
// policy the WAL and flush paths use.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Values <= 1 mean a single attempt.
	MaxAttempts int

	// BaseBackoff is slept after the first failure and doubles per retry,
	// capped at MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration

	// Jitter spreads each backoff uniformly over
	// [backoff*(1-Jitter), backoff*(1+Jitter)] so concurrent writers that
	// hit the same transient fault do not retry in lockstep. 0 disables
	// jitter; values above 1 are treated as 1. The jittered sleep is still
	// capped at MaxBackoff.
	Jitter float64

	// Rand overrides the jitter's randomness source in tests; it must
	// return values in [0, 1). Nil means math/rand/v2.Float64 (auto-seeded,
	// goroutine-safe — no global seed dependence).
	Rand func() float64

	// OnRetry, when non-nil, observes each retry (attempt is the 1-based
	// number of the attempt that just failed). Metrics hook.
	OnRetry func(attempt int, err error)

	// Sleep overrides time.Sleep in tests. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetry is the bounded retry applied to WAL appends and page
// flushes: 5 attempts, 100µs..2ms backoff — a few storage round trips, far
// below any client-visible timeout.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 5,
	BaseBackoff: 100 * time.Microsecond,
	MaxBackoff:  2 * time.Millisecond,
	Jitter:      0.5,
}

// jittered returns backoff spread by the policy's jitter and capped at
// MaxBackoff.
func (p RetryPolicy) jittered(backoff time.Duration) time.Duration {
	j := p.Jitter
	if j > 1 {
		j = 1
	}
	if j > 0 {
		rnd := p.Rand
		if rnd == nil {
			rnd = rand.Float64
		}
		// Uniform over [1-j, 1+j).
		factor := 1 - j + 2*j*rnd()
		backoff = time.Duration(float64(backoff) * factor)
	}
	if p.MaxBackoff > 0 && backoff > p.MaxBackoff {
		backoff = p.MaxBackoff
	}
	return backoff
}

// Do runs fn, retrying transient failures within the policy's bounds. The
// final error (wrapped with the attempt count when retries are exhausted)
// preserves the cause for errors.Is.
func (p RetryPolicy) Do(op string, fn func() error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := p.BaseBackoff
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= attempts {
			break
		}
		if p.OnRetry != nil {
			p.OnRetry(attempt, err)
		}
		if backoff > 0 {
			sleep(p.jittered(backoff))
			backoff *= 2
			if p.MaxBackoff > 0 && backoff > p.MaxBackoff {
				backoff = p.MaxBackoff
			}
		}
	}
	return fmt.Errorf("%s: %d attempts exhausted: %w", op, attempts, err)
}
