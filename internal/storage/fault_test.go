package storage

import (
	"errors"
	"testing"
	"time"
)

func TestFaultTransientAppend(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 1, AppendFailProb: 1})
	s := Open(&Options{Faults: plan})
	if _, err := s.Append(StreamBase, 1, []byte("x")); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if !IsTransient(errTake(s.Append(StreamBase, 1, []byte("x")))) {
		t.Fatal("injected transient error not classified as transient")
	}
	plan.SetEnabled(false)
	loc, err := s.Append(StreamBase, 1, []byte("x"))
	if err != nil {
		t.Fatalf("disarmed plan still failing: %v", err)
	}
	if _, err := s.Read(loc); err != nil {
		t.Fatalf("read after disarm: %v", err)
	}
	if st := plan.Stats(); st.TransientAppends != 2 {
		t.Fatalf("TransientAppends = %d, want 2", st.TransientAppends)
	}
}

func errTake(_ Loc, err error) error { return err }

func TestFaultTornWritePersistsPrefix(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 7})
	s := Open(&Options{Faults: plan})
	payload := []byte("0123456789abcdef")
	plan.TearNext()
	if _, err := s.Append(StreamBase, 1, payload); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("err = %v, want ErrTornWrite", err)
	}
	// The torn prefix is a real entry: scan must surface it, shorter than
	// the payload and never empty (the tear cut is in [1, n-1]).
	entries, _, err := s.Scan(StreamBase, Cursor{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("entries = %d, want the torn prefix", len(entries))
	}
	got := entries[0].Data
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("torn prefix length %d, want in [1, %d]", len(got), len(payload)-1)
	}
	if string(got) != string(payload[:len(got)]) {
		t.Fatalf("torn prefix %q is not a prefix of the payload", got)
	}
}

func TestFaultCrashPoint(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 3})
	s := Open(&Options{Faults: plan})
	if _, err := s.Append(StreamWAL, 0, []byte("before")); err != nil {
		t.Fatal(err)
	}
	plan.ScheduleCrash(2)
	if _, err := s.Append(StreamWAL, 0, []byte("ok")); err != nil {
		t.Fatalf("append before the crash point: %v", err)
	}
	loc, _ := s.Append(StreamBase, 1, []byte("pre-crash durable"))
	_ = loc
	if _, err := s.Append(StreamWAL, 0, []byte("crashing")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash append err = %v, want ErrCrashed", err)
	}
	if !plan.Crashed() {
		t.Fatal("plan not marked crashed")
	}
	// Every subsequent append fails; reads keep working (shared storage
	// outlives the node).
	if _, err := s.Append(StreamBase, 1, []byte("later")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append err = %v, want ErrCrashed", err)
	}
	if _, _, err := s.Scan(StreamWAL, Cursor{}, 0); err != nil {
		t.Fatalf("post-crash scan: %v", err)
	}
	plan.ClearCrash()
	if _, err := s.Append(StreamBase, 1, []byte("recovered")); err != nil {
		t.Fatalf("append after ClearCrash: %v", err)
	}
}

func TestFaultCrashCountsAcrossStreams(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 3})
	s := Open(&Options{Faults: plan})
	plan.ScheduleCrash(3)
	_, _ = s.Append(StreamBase, 1, []byte("a"))
	_, _ = s.Append(StreamDelta, 1, []byte("b"))
	if _, err := s.Append(StreamWAL, 0, []byte("c")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("third append err = %v, want ErrCrashed (appends counted across streams)", err)
	}
}

func TestFaultExtentLoss(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 5})
	s := Open(&Options{Faults: plan})
	loc, err := s.Append(StreamBase, 1, []byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	plan.LoseExtent(StreamBase, loc.Extent)
	if _, err := s.Read(loc); !errors.Is(err, ErrExtentLost) {
		t.Fatalf("read err = %v, want ErrExtentLost", err)
	}
	if _, _, err := s.Scan(StreamBase, Cursor{}, 0); !errors.Is(err, ErrExtentLost) {
		t.Fatalf("scan err = %v, want ErrExtentLost", err)
	}
	plan.RestoreExtent(StreamBase, loc.Extent)
	got, err := s.Read(loc)
	if err != nil || string(got) != "doomed" {
		t.Fatalf("read after restore = %q, %v", got, err)
	}
}

func TestFaultScanReturnsPrefixBeforeLostExtent(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 5})
	s := Open(&Options{ExtentSize: 8, Faults: plan}) // one entry per extent
	l1, _ := s.Append(StreamWAL, 0, []byte("aaaaa"))
	l2, _ := s.Append(StreamWAL, 0, []byte("bbbbb"))
	_, _ = s.Append(StreamWAL, 0, []byte("ccccc"))
	if l1.Extent == l2.Extent {
		t.Fatal("test premise broken: entries share an extent")
	}
	plan.LoseExtent(StreamWAL, l2.Extent)
	entries, cur, err := s.Scan(StreamWAL, Cursor{}, 0)
	if !errors.Is(err, ErrExtentLost) {
		t.Fatalf("scan err = %v, want ErrExtentLost", err)
	}
	if len(entries) != 1 || string(entries[0].Data) != "aaaaa" {
		t.Fatalf("scan before the hole = %v, want just the first entry", entries)
	}
	if cur.Extent != l2.Extent {
		t.Fatalf("cursor parked at extent %d, want the lost extent %d", cur.Extent, l2.Extent)
	}
}

func TestFaultSealLossRespectsStreamFilter(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{
		Seed:         11,
		SealLossProb: 1,
		LossStreams:  []StreamID{StreamWAL},
	})
	s := Open(&Options{ExtentSize: 8, Faults: plan})
	// Sealing base extents must never be lost under the WAL-only filter.
	for i := 0; i < 8; i++ {
		if _, err := s.Append(StreamBase, 1, []byte("basebase")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s.Scan(StreamBase, Cursor{}, 0); err != nil {
		t.Fatalf("base stream lost despite filter: %v", err)
	}
	l1, _ := s.Append(StreamWAL, 0, []byte("walwalwa"))
	_, _ = s.Append(StreamWAL, 0, []byte("walwalwa")) // seals l1's extent
	if _, err := s.Read(l1); !errors.Is(err, ErrExtentLost) {
		t.Fatalf("sealed WAL extent not lost at probability 1: %v", err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() FaultStats {
		plan := NewFaultPlan(FaultConfig{
			Seed:           99,
			AppendFailProb: 0.3,
			TornWriteProb:  0.2,
			ReadFailProb:   0.25,
		})
		s := Open(&Options{Faults: plan})
		var locs []Loc
		for i := 0; i < 200; i++ {
			if loc, err := s.Append(StreamBase, uint64(i), []byte("payload")); err == nil {
				locs = append(locs, loc)
			}
		}
		for _, loc := range locs {
			_, _ = s.Read(loc)
		}
		return plan.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different faults:\n%+v\n%+v", a, b)
	}
	if a.Total() == 0 {
		t.Fatal("no faults injected at these probabilities")
	}
}

func TestFaultLatencySpike(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 2, SpikeProb: 1, SpikeLatency: 2 * time.Millisecond})
	s := Open(&Options{Faults: plan})
	start := time.Now()
	if _, err := s.Append(StreamBase, 1, []byte("slow")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("append took %v, want >= 2ms spike", d)
	}
	if st := plan.Stats(); st.LatencySpikes == 0 {
		t.Fatal("spike not counted")
	}
}

func TestFaultOnInjectHook(t *testing.T) {
	plan := NewFaultPlan(FaultConfig{Seed: 1, AppendFailProb: 1})
	var kinds []FaultKind
	plan.OnInject = func(k FaultKind) { kinds = append(kinds, k) }
	s := Open(&Options{Faults: plan})
	_, _ = s.Append(StreamBase, 1, []byte("x"))
	if len(kinds) != 1 || kinds[0] != FaultTransientAppend {
		t.Fatalf("OnInject saw %v, want [transient-append]", kinds)
	}
	if kinds[0].String() != "transient-append" {
		t.Fatalf("FaultKind string = %q", kinds[0])
	}
}

func TestRetryPolicy(t *testing.T) {
	t.Run("succeeds after transient failures", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Microsecond, Sleep: func(time.Duration) {}}
		var retries int
		p.OnRetry = func(int, error) { retries++ }
		calls := 0
		err := p.Do("op", func() error {
			calls++
			if calls < 3 {
				return ErrTransient
			}
			return nil
		})
		if err != nil || calls != 3 || retries != 2 {
			t.Fatalf("err=%v calls=%d retries=%d", err, calls, retries)
		}
	})
	t.Run("gives up after MaxAttempts", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, Sleep: func(time.Duration) {}}
		calls := 0
		err := p.Do("op", func() error { calls++; return ErrTornWrite })
		if calls != 3 {
			t.Fatalf("calls = %d, want 3", calls)
		}
		if !errors.Is(err, ErrTornWrite) {
			t.Fatalf("exhausted error %v does not wrap the cause", err)
		}
	})
	t.Run("permanent errors do not retry", func(t *testing.T) {
		p := RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Microsecond, Sleep: func(time.Duration) {}}
		calls := 0
		boom := errors.New("boom")
		err := p.Do("op", func() error { calls++; return boom })
		if calls != 1 || !errors.Is(err, boom) {
			t.Fatalf("calls=%d err=%v, want one attempt returning the cause", calls, err)
		}
	})
}
