package storage

import (
	"bytes"

	"bg3/internal/metrics"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestAppendRead(t *testing.T) {
	s := Open(nil)
	loc, err := s.Append(StreamBase, 1, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(loc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read = %q, want hello", got)
	}
}

func TestReadReturnsCopy(t *testing.T) {
	s := Open(nil)
	loc, _ := s.Append(StreamBase, 1, []byte("abc"))
	got, _ := s.Read(loc)
	got[0] = 'X'
	again, _ := s.Read(loc)
	if string(again) != "abc" {
		t.Fatalf("mutating a read buffer corrupted the store: %q", again)
	}
}

func TestStreamsAreIndependent(t *testing.T) {
	s := Open(nil)
	l1, _ := s.Append(StreamBase, 1, []byte("base"))
	l2, _ := s.Append(StreamDelta, 1, []byte("delta"))
	if l1.Stream == l2.Stream {
		t.Fatal("streams collided")
	}
	b, _ := s.Read(l1)
	d, _ := s.Read(l2)
	if string(b) != "base" || string(d) != "delta" {
		t.Fatalf("cross-stream corruption: %q %q", b, d)
	}
}

func TestExtentRollover(t *testing.T) {
	s := Open(&Options{ExtentSize: 32})
	var locs []Loc
	for i := 0; i < 10; i++ {
		loc, err := s.Append(StreamBase, uint64(i), []byte("0123456789")) // 10 bytes, 3 per extent
		if err != nil {
			t.Fatal(err)
		}
		locs = append(locs, loc)
	}
	if locs[0].Extent == locs[9].Extent {
		t.Fatal("expected rollover across extents")
	}
	for _, loc := range locs {
		if _, err := s.Read(loc); err != nil {
			t.Fatalf("read %v: %v", loc, err)
		}
	}
	u := s.Usage(StreamBase)
	if len(u) < 3 {
		t.Fatalf("extent count = %d, want >= 3", len(u))
	}
	for _, e := range u[:len(u)-1] {
		if !e.Sealed {
			t.Fatalf("non-final extent %d not sealed", e.Extent)
		}
	}
}

func TestAppendTooLarge(t *testing.T) {
	s := Open(&Options{ExtentSize: 8})
	if _, err := s.Append(StreamBase, 0, make([]byte, 9)); err == nil {
		t.Fatal("oversized append should fail")
	}
}

func TestAppendAfterClose(t *testing.T) {
	s := Open(nil)
	loc, _ := s.Append(StreamBase, 0, []byte("x"))
	s.Close()
	if _, err := s.Append(StreamBase, 0, []byte("y")); err != ErrClosed {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	// Reads still work for draining readers.
	if _, err := s.Read(loc); err != nil {
		t.Fatalf("read after close: %v", err)
	}
}

func TestInvalidateTracking(t *testing.T) {
	s := Open(&Options{ExtentSize: 1 << 16})
	var locs []Loc
	for i := 0; i < 4; i++ {
		loc, _ := s.Append(StreamBase, uint64(i), []byte("data"))
		locs = append(locs, loc)
	}
	s.Invalidate(locs[0])
	s.Invalidate(locs[1])
	s.Invalidate(locs[1]) // double-invalidate is a no-op

	u := s.Usage(StreamBase)
	if len(u) != 1 {
		t.Fatalf("extents = %d, want 1", len(u))
	}
	if u[0].ValidRecords != 2 || u[0].InvalidRecords != 2 {
		t.Fatalf("valid/invalid = %d/%d, want 2/2", u[0].ValidRecords, u[0].InvalidRecords)
	}
	if got := u[0].FragmentationRate(); got != 0.5 {
		t.Fatalf("fragmentation = %f, want 0.5", got)
	}
	// Invalidated records remain readable until reclamation (RO nodes
	// depend on this).
	if _, err := s.Read(locs[0]); err != nil {
		t.Fatalf("read invalidated record: %v", err)
	}
}

func TestReclaimMovesOnlyValid(t *testing.T) {
	s := Open(&Options{ExtentSize: 64})
	var locs []Loc
	for i := 0; i < 8; i++ {
		loc, _ := s.Append(StreamBase, uint64(i), bytes.Repeat([]byte{byte(i)}, 8))
		locs = append(locs, loc)
	}
	ext := locs[0].Extent
	// Invalidate odd records of the first extent.
	var expectValid []uint64
	for i, loc := range locs {
		if loc.Extent != ext {
			continue
		}
		if i%2 == 1 {
			s.Invalidate(loc)
		} else {
			expectValid = append(expectValid, uint64(i))
		}
	}
	moved := map[uint64]Loc{}
	n, err := s.Reclaim(StreamBase, ext, func(tag uint64, old, new Loc) bool {
		moved[tag] = new
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(moved) != len(expectValid) {
		t.Fatalf("moved %d records, want %d", len(moved), len(expectValid))
	}
	if n != int64(8*len(expectValid)) {
		t.Fatalf("moved bytes = %d, want %d", n, 8*len(expectValid))
	}
	// Old extent gone.
	if _, err := s.Read(locs[0]); err != ErrReclaimed {
		t.Fatalf("read from reclaimed extent = %v, want ErrReclaimed", err)
	}
	// New copies hold the original data.
	for tag, loc := range moved {
		got, err := s.Read(loc)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(tag)}, 8)) {
			t.Fatalf("tag %d: relocated data mismatch", tag)
		}
	}
}

func TestReclaimRejectedRelocation(t *testing.T) {
	s := Open(&Options{ExtentSize: 64})
	loc, _ := s.Append(StreamBase, 7, []byte("payload!"))
	_, err := s.Reclaim(StreamBase, loc.Extent, func(tag uint64, old, new Loc) bool {
		return false // owner says the record went stale
	})
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GCBytesMoved != 0 {
		t.Fatalf("GCBytesMoved = %d, want 0 when relocation rejected", st.GCBytesMoved)
	}
	// The fresh copy must be marked invalid so a later reclaim can drop it.
	u := s.Usage(StreamBase)
	var valid int
	for _, e := range u {
		valid += e.ValidRecords
	}
	if valid != 0 {
		t.Fatalf("valid records = %d, want 0", valid)
	}
}

func TestReclaimUnknownExtent(t *testing.T) {
	s := Open(nil)
	if _, err := s.Reclaim(StreamBase, 42, nil); err != ErrReclaimed {
		t.Fatalf("err = %v, want ErrReclaimed", err)
	}
}

func TestDropExpired(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := Open(&Options{ExtentSize: 16, Now: clock})

	// Fill two extents at t=1000.
	for i := 0; i < 4; i++ {
		if _, err := s.Append(StreamBase, uint64(i), []byte("12345678")); err != nil {
			t.Fatal(err)
		}
	}
	// Advance and write into a third.
	now = time.Unix(2000, 0)
	if _, err := s.Append(StreamBase, 9, []byte("12345678")); err != nil {
		t.Fatal(err)
	}

	dropped := s.DropExpired(StreamBase, time.Unix(1500, 0))
	if len(dropped) == 0 {
		t.Fatal("expected extents to expire")
	}
	st := s.Stats()
	if st.ExtentsExpired != int64(len(dropped)) {
		t.Fatalf("ExtentsExpired = %d, want %d", st.ExtentsExpired, len(dropped))
	}
	// Active extent never dropped even if old.
	dropped2 := s.DropExpired(StreamBase, time.Unix(3000, 0))
	u := s.Usage(StreamBase)
	if len(u) != 1 {
		t.Fatalf("extents remaining = %d, want just the active one (dropped2=%v)", len(u), dropped2)
	}
	if u[0].Sealed {
		t.Fatal("remaining extent should be the unsealed active one")
	}
}

func TestUpdateGradientOrdering(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	s := Open(&Options{ExtentSize: 1 << 16, Now: clock})

	var hotLocs, coldLocs []Loc
	for i := 0; i < 10; i++ {
		loc, _ := s.Append(StreamBase, uint64(i), []byte("hot-data"))
		hotLocs = append(hotLocs, loc)
	}
	// Hot extent: invalidations arrive quickly.
	now = now.Add(time.Second)
	for _, l := range hotLocs[:5] {
		s.Invalidate(l)
	}
	u := s.Usage(StreamBase)
	if len(u) != 1 {
		t.Fatalf("extents = %d, want 1", len(u))
	}
	if u[0].UpdateGradient <= 0 {
		t.Fatalf("hot extent gradient = %f, want > 0", u[0].UpdateGradient)
	}
	_ = coldLocs
}

func TestStatsAccounting(t *testing.T) {
	s := Open(&Options{ExtentSize: 1 << 16})
	loc, _ := s.Append(StreamBase, 1, make([]byte, 100))
	if _, err := s.Read(loc); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WriteOps != 1 || st.BytesWritten != 100 {
		t.Fatalf("write stats = %d ops %d bytes", st.WriteOps, st.BytesWritten)
	}
	if st.ReadOps != 1 || st.BytesRead != 100 {
		t.Fatalf("read stats = %d ops %d bytes", st.ReadOps, st.BytesRead)
	}
	if st.LiveBytes != 100 {
		t.Fatalf("LiveBytes = %d, want 100", st.LiveBytes)
	}
	s.ResetIOStats()
	st = s.Stats()
	if st.WriteOps != 0 || st.ReadOps != 0 {
		t.Fatal("ResetIOStats did not clear counters")
	}
	if st.LiveBytes != 100 {
		t.Fatal("ResetIOStats must not clear space accounting")
	}
}

func TestConcurrentAppendRead(t *testing.T) {
	s := Open(&Options{ExtentSize: 1 << 12})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				payload := []byte(fmt.Sprintf("w%d-i%d", w, i))
				loc, err := s.Append(StreamBase, uint64(w), payload)
				if err != nil {
					errs <- err
					return
				}
				got, err := s.Read(loc)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("w%d i%d: got %q want %q", w, i, got, payload)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.WriteOps != workers*per {
		t.Fatalf("WriteOps = %d, want %d", st.WriteOps, workers*per)
	}
}

// Property: any sequence of appends is readable back verbatim, and
// LiveBytes equals the sum of appended record sizes.
func TestPropertyAppendReadRoundTrip(t *testing.T) {
	f := func(payloads [][]byte) bool {
		s := Open(&Options{ExtentSize: 1 << 12})
		var total int64
		type pair struct {
			loc  Loc
			data []byte
		}
		var pairs []pair
		for i, p := range payloads {
			if len(p) > 1<<12 {
				p = p[:1<<12]
			}
			loc, err := s.Append(StreamBase, uint64(i), p)
			if err != nil {
				return false
			}
			pairs = append(pairs, pair{loc, p})
			total += int64(len(p))
		}
		for _, pr := range pairs {
			got, err := s.Read(pr.loc)
			if err != nil || !bytes.Equal(got, pr.data) {
				return false
			}
		}
		return s.Stats().LiveBytes == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: invalidating k distinct records yields fragmentation k/n.
func TestPropertyFragmentation(t *testing.T) {
	f := func(n uint8, k uint8) bool {
		total := int(n%32) + 1
		kill := int(k) % (total + 1)
		s := Open(&Options{ExtentSize: 1 << 16})
		var locs []Loc
		for i := 0; i < total; i++ {
			loc, _ := s.Append(StreamDelta, uint64(i), []byte("x"))
			locs = append(locs, loc)
		}
		for i := 0; i < kill; i++ {
			s.Invalidate(locs[i])
		}
		u := s.Usage(StreamDelta)
		if len(u) != 1 {
			return false
		}
		want := float64(kill) / float64(total)
		got := u[0].FragmentationRate()
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyInjection(t *testing.T) {
	s := Open(&Options{WriteLatency: 5 * time.Millisecond, ReadLatency: 5 * time.Millisecond})
	start := time.Now()
	loc, _ := s.Append(StreamBase, 0, []byte("x"))
	if _, err := s.Read(loc); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("elapsed = %v, want >= 10ms with injected latency", elapsed)
	}
}

func TestLocString(t *testing.T) {
	l := Loc{Stream: StreamDelta, Extent: 3, Offset: 16, Length: 8}
	if got := l.String(); got != "delta/3@16+8" {
		t.Fatalf("String = %q", got)
	}
	if !(Loc{}).IsZero() || l.IsZero() {
		t.Fatal("IsZero misbehaves")
	}
}

func TestReclaimGraceKeepsCondemnedReadable(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	s := Open(&Options{ExtentSize: 64, Now: clock, ReclaimGrace: 10 * time.Second})
	var locs []Loc
	for i := 0; i < 17; i++ { // extents A and B sealed, third active
		loc, _ := s.Append(StreamBase, uint64(i), bytes.Repeat([]byte{byte(i)}, 8))
		locs = append(locs, loc)
	}
	ext := locs[0].Extent
	s.Invalidate(locs[0])
	s.Invalidate(locs[9]) // fragment extent B too
	if _, err := s.Reclaim(StreamBase, ext, func(tag uint64, old, new Loc) bool { return true }); err != nil {
		t.Fatal(err)
	}
	// Old locations in the condemned extent remain readable during grace.
	if _, err := s.Read(locs[1]); err != nil {
		t.Fatalf("condemned read during grace: %v", err)
	}
	// Space accounting excludes the condemned extent.
	for _, u := range s.Usage(StreamBase) {
		if u.Extent == ext {
			t.Fatal("condemned extent still in usage")
		}
	}
	// Re-reclaiming a condemned extent is rejected.
	if _, err := s.Reclaim(StreamBase, ext, nil); err != ErrReclaimed {
		t.Fatalf("double reclaim = %v, want ErrReclaimed", err)
	}
	// After the grace period (purged on the next reclaim cycle) the old
	// locations finally die.
	now = now.Add(time.Minute)
	if _, err := s.Reclaim(StreamBase, locs[9].Extent, func(uint64, Loc, Loc) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(locs[1]); err != ErrReclaimed {
		t.Fatalf("read after grace = %v, want ErrReclaimed", err)
	}
}

func TestGCBytesReclaimedAccounting(t *testing.T) {
	s := Open(&Options{ExtentSize: 64})
	var locs []Loc
	for i := 0; i < 8; i++ {
		loc, _ := s.Append(StreamBase, uint64(i), bytes.Repeat([]byte{byte(i)}, 8))
		locs = append(locs, loc)
	}
	ext := locs[0].Extent
	for i, loc := range locs {
		if loc.Extent == ext && i%2 == 1 {
			s.Invalidate(loc)
		}
	}
	moved, err := s.Reclaim(StreamBase, ext, func(tag uint64, old, new Loc) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.GCBytesMoved != moved {
		t.Fatalf("GCBytesMoved = %d, want %d", st.GCBytesMoved, moved)
	}
	// The reclaimed extent held 64 bytes; `moved` of them were rewritten,
	// so the rest was freed.
	if want := 64 - moved; st.GCBytesReclaimed != want {
		t.Fatalf("GCBytesReclaimed = %d, want %d", st.GCBytesReclaimed, want)
	}
	if amp := st.GCWriteAmp(); amp <= 0 {
		t.Fatalf("GCWriteAmp = %f, want > 0 after moving bytes", amp)
	}
}

func TestGCBytesReclaimedOnExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s := Open(&Options{ExtentSize: 16, Now: clock})
	for i := 0; i < 4; i++ {
		if _, err := s.Append(StreamBase, uint64(i), []byte("12345678")); err != nil {
			t.Fatal(err)
		}
	}
	now = time.Unix(2000, 0)
	if _, err := s.Append(StreamBase, 9, []byte("12345678")); err != nil {
		t.Fatal(err)
	}
	dropped := s.DropExpired(StreamBase, time.Unix(1500, 0))
	if len(dropped) == 0 {
		t.Fatal("expected extents to expire")
	}
	st := s.Stats()
	// TTL expiry frees whole extents without moving a byte: reclaimed
	// bytes grow, write amp stays zero.
	if st.GCBytesReclaimed == 0 {
		t.Fatal("GCBytesReclaimed = 0 after TTL expiry, want > 0")
	}
	if st.GCBytesMoved != 0 {
		t.Fatalf("GCBytesMoved = %d, want 0 for TTL expiry", st.GCBytesMoved)
	}
	if amp := st.GCWriteAmp(); amp != 0 {
		t.Fatalf("GCWriteAmp = %f, want 0 for pure expiry", amp)
	}
}

func TestStoreRegisterMetrics(t *testing.T) {
	s := Open(&Options{ExtentSize: 64})
	r := metrics.NewRegistry()
	s.RegisterMetrics(r)
	if _, err := s.Append(StreamBase, 1, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if v := snap["storage.write_ops"]; v.Value != 1 {
		t.Fatalf("storage.write_ops = %+v, want 1", v)
	}
	if v := snap["storage.bytes_written"]; v.Value != 5 {
		t.Fatalf("storage.bytes_written = %+v, want 5", v)
	}
	for _, name := range []string{
		"storage.read_ops", "storage.bytes_read", "storage.gc_bytes_moved",
		"storage.gc_bytes_reclaimed", "storage.extents_reclaimed",
		"storage.extents_expired", "storage.live_bytes", "storage.total_bytes",
		"storage.extent_count", "storage.gc_write_amp",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("registry missing %q", name)
		}
	}
}
