package storage

import "bg3/internal/metrics"

// RegisterMetrics exposes the store's I/O, GC and capacity accounting in the
// given registry under the "storage." prefix. The probes read from Stats()
// so they stay consistent with the snapshot API.
func (s *Store) RegisterMetrics(r *metrics.Registry) {
	r.CounterFunc("storage.read_ops", s.readOps.Load)
	r.CounterFunc("storage.write_ops", s.writeOps.Load)
	r.CounterFunc("storage.bytes_read", s.bytesRead.Load)
	r.CounterFunc("storage.bytes_written", s.bytesWritten.Load)
	r.CounterFunc("storage.batch_reads", s.batchReads.Load)
	r.CounterFunc("storage.batch_locs", s.batchLocs.Load)
	r.CounterFunc("storage.batch_round_trips", s.batchRoundTrips.Load)
	r.CounterFunc("storage.fenced_appends", s.fencedAppends.Load)
	r.CounterFunc("storage.gc_bytes_moved", func() int64 { return s.Stats().GCBytesMoved })
	r.CounterFunc("storage.gc_bytes_reclaimed", func() int64 { return s.Stats().GCBytesReclaimed })
	r.CounterFunc("storage.gc_records_moved", func() int64 { return s.Stats().GCRecordsMoved })
	r.CounterFunc("storage.extents_reclaimed", func() int64 { return s.Stats().ExtentsReclaimed })
	r.CounterFunc("storage.extents_expired", func() int64 { return s.Stats().ExtentsExpired })
	r.GaugeFunc("storage.live_bytes", func() int64 { return s.Stats().LiveBytes })
	r.GaugeFunc("storage.total_bytes", func() int64 { return s.Stats().TotalBytes })
	r.GaugeFunc("storage.extent_count", func() int64 { return s.Stats().ExtentCount })
	r.RatioFunc("storage.gc_write_amp", func() float64 { return s.Stats().GCWriteAmp() })
}
