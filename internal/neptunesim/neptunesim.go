// Package neptunesim is a simulated stand-in for the external comparator
// (AWS Neptune) of the Fig. 8 experiments. Neptune is closed source and
// cannot run offline, so — per the substitution policy in DESIGN.md §4 —
// this package models the architectural traits the paper's comparison
// rests on, as characterized in the ByteGraph study [24]:
//
//   - no graph-native paged adjacency: each (vertex, edge-type) adjacency
//     list is one monolithic record, so every edge insert rewrites the
//     whole list (super-vertices hurt);
//   - coarse-grained concurrency: a single store-wide lock serializes
//     writers and blocks readers during writes;
//   - a fixed per-operation overhead standing in for the deeper query
//     path of a general-purpose engine (protocol handling, query
//     translation) that a storage-engine-level client call does not pay
//     in BG3/ByteGraph.
//
// The reproduction claim is therefore the *ordering and rough magnitude*
// of Fig. 8 (BG3 and ByteGraph far above the Neptune-like system), not
// Neptune's absolute performance.
package neptunesim

import (
	"sort"
	"sync"
	"time"

	"bg3/internal/graph"
)

// Config parameterizes the simulator.
type Config struct {
	// OpCost is the fixed per-operation overhead (default 30µs). The
	// store-wide lock is held while it elapses, which is what makes the
	// simulator scale poorly with cores — the trait the Fig. 8 vertical
	// scaling plot shows.
	OpCost time.Duration
}

func (c Config) withDefaults() Config {
	if c.OpCost <= 0 {
		c.OpCost = 30 * time.Microsecond
	}
	return c
}

type adjKey struct {
	src graph.VertexID
	typ graph.EdgeType
}

// Store is the simulated comparator. It implements graph.Store.
type Store struct {
	cfg Config

	mu       sync.Mutex // deliberately coarse
	vertices map[graph.VertexID]map[graph.VertexType]graph.Properties
	adj      map[adjKey][]edge
}

type edge struct {
	dst   graph.VertexID
	props graph.Properties
}

var _ graph.Store = (*Store)(nil)

// New creates an empty simulator.
func New(cfg Config) *Store {
	return &Store{
		cfg:      cfg.withDefaults(),
		vertices: make(map[graph.VertexID]map[graph.VertexType]graph.Properties),
		adj:      make(map[adjKey][]edge),
	}
}

// spin burns the configured per-op cost while holding the lock. A busy
// wait (rather than sleep) models CPU-bound query-path overhead.
func (s *Store) spin() {
	end := time.Now().Add(s.cfg.OpCost)
	for time.Now().Before(end) {
	}
}

// AddVertex implements graph.Store.
func (s *Store) AddVertex(v graph.Vertex) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spin()
	m := s.vertices[v.ID]
	if m == nil {
		m = make(map[graph.VertexType]graph.Properties)
		s.vertices[v.ID] = m
	}
	m[v.Type] = v.Props
	return nil
}

// GetVertex implements graph.Store.
func (s *Store) GetVertex(id graph.VertexID, typ graph.VertexType) (graph.Vertex, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spin()
	props, ok := s.vertices[id][typ]
	if !ok {
		return graph.Vertex{}, false, nil
	}
	return graph.Vertex{ID: id, Type: typ, Props: props}, true, nil
}

// AddEdge implements graph.Store. The whole adjacency record is rewritten
// (copied), modelling a non-paged adjacency representation.
func (s *Store) AddEdge(e graph.Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spin()
	k := adjKey{src: e.Src, typ: e.Type}
	old := s.adj[k]
	idx := sort.Search(len(old), func(i int) bool { return old[i].dst >= e.Dst })
	rewritten := make([]edge, 0, len(old)+1) // full-list rewrite
	rewritten = append(rewritten, old[:idx]...)
	if idx < len(old) && old[idx].dst == e.Dst {
		rewritten = append(rewritten, edge{dst: e.Dst, props: e.Props})
		rewritten = append(rewritten, old[idx+1:]...)
	} else {
		rewritten = append(rewritten, edge{dst: e.Dst, props: e.Props})
		rewritten = append(rewritten, old[idx:]...)
	}
	s.adj[k] = rewritten
	return nil
}

// GetEdge implements graph.Store.
func (s *Store) GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spin()
	adj := s.adj[adjKey{src: src, typ: typ}]
	idx := sort.Search(len(adj), func(i int) bool { return adj[i].dst >= dst })
	if idx >= len(adj) || adj[idx].dst != dst {
		return graph.Edge{}, false, nil
	}
	return graph.Edge{Src: src, Dst: dst, Type: typ, Props: adj[idx].props}, true, nil
}

// DeleteEdge implements graph.Store.
func (s *Store) DeleteEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spin()
	k := adjKey{src: src, typ: typ}
	old := s.adj[k]
	idx := sort.Search(len(old), func(i int) bool { return old[i].dst >= dst })
	if idx >= len(old) || old[idx].dst != dst {
		return nil
	}
	rewritten := make([]edge, 0, len(old)-1)
	rewritten = append(rewritten, old[:idx]...)
	rewritten = append(rewritten, old[idx+1:]...)
	s.adj[k] = rewritten
	return nil
}

// Neighbors implements graph.Store.
func (s *Store) Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error {
	s.mu.Lock()
	s.spin()
	adj := s.adj[adjKey{src: src, typ: typ}] // snapshot; lists are immutable
	s.mu.Unlock()
	for i, e := range adj {
		if limit > 0 && i >= limit {
			return nil
		}
		if !fn(e.dst, e.props) {
			return nil
		}
	}
	return nil
}

// Degree implements graph.Store.
func (s *Store) Degree(src graph.VertexID, typ graph.EdgeType) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.spin()
	return len(s.adj[adjKey{src: src, typ: typ}]), nil
}
