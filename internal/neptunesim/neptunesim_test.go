package neptunesim

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"bg3/internal/graph"
)

func fastStore() *Store {
	return New(Config{OpCost: time.Nanosecond}) // negligible spin for unit tests
}

func TestVertexAndEdgeRoundTrip(t *testing.T) {
	s := fastStore()
	if err := s.AddVertex(graph.Vertex{ID: 1, Type: graph.VTypeUser}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetVertex(1, graph.VTypeUser); !ok {
		t.Fatal("vertex missing")
	}
	if err := s.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: graph.ETypeFollow,
		Props: graph.Properties{{Name: "w", Value: []byte("3")}}}); err != nil {
		t.Fatal(err)
	}
	e, ok, _ := s.GetEdge(1, graph.ETypeFollow, 2)
	if !ok {
		t.Fatal("edge missing")
	}
	if w, _ := e.Props.Get("w"); string(w) != "3" {
		t.Fatalf("props = %+v", e.Props)
	}
	if err := s.DeleteEdge(1, graph.ETypeFollow, 2); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.GetEdge(1, graph.ETypeFollow, 2); ok {
		t.Fatal("deleted edge visible")
	}
}

func TestNeighborsOrdered(t *testing.T) {
	s := fastStore()
	for _, d := range []graph.VertexID{5, 1, 3} {
		if err := s.AddEdge(graph.Edge{Src: 1, Dst: d, Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	var got []graph.VertexID
	if err := s.Neighbors(1, graph.ETypeLike, 0, func(d graph.VertexID, _ graph.Properties) bool {
		got = append(got, d)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("neighbors = %v", got)
	}
	if deg, _ := s.Degree(1, graph.ETypeLike); deg != 3 {
		t.Fatalf("degree = %d", deg)
	}
}

func TestOverwriteEdge(t *testing.T) {
	s := fastStore()
	for i := 0; i < 3; i++ {
		if err := s.AddEdge(graph.Edge{Src: 1, Dst: 2, Type: graph.ETypeLike,
			Props: graph.Properties{{Name: "v", Value: []byte{byte(i)}}}}); err != nil {
			t.Fatal(err)
		}
	}
	if deg, _ := s.Degree(1, graph.ETypeLike); deg != 1 {
		t.Fatalf("degree = %d after overwrites", deg)
	}
	e, _, _ := s.GetEdge(1, graph.ETypeLike, 2)
	if v, _ := e.Props.Get("v"); v[0] != 2 {
		t.Fatalf("latest value = %v", v)
	}
}

func TestConcurrentSafety(t *testing.T) {
	s := fastStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.AddEdge(graph.Edge{Src: graph.VertexID(w % 2), Dst: graph.VertexID(w*1000 + i), Type: graph.ETypeLike})
				_, _ = s.Degree(graph.VertexID(w%2), graph.ETypeLike)
			}
		}(w)
	}
	wg.Wait()
	d0, _ := s.Degree(0, graph.ETypeLike)
	d1, _ := s.Degree(1, graph.ETypeLike)
	if d0+d1 != 8*200 {
		t.Fatalf("edges = %d, want 1600", d0+d1)
	}
}

func TestCoarseLockLimitsParallelism(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skip("needs >= 2 CPUs")
	}
	// With a visible per-op cost and a global lock, doubling the workers
	// must NOT double throughput. (BG3's per-page latching does scale,
	// which is the architectural contrast of Fig. 8.)
	s := New(Config{OpCost: 20 * time.Microsecond})
	run := func(workers int) float64 {
		var wg sync.WaitGroup
		const per = 100
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					_ = s.AddEdge(graph.Edge{Src: graph.VertexID(w), Dst: graph.VertexID(i), Type: graph.ETypeLike})
				}
			}(w)
		}
		wg.Wait()
		return float64(workers*per) / time.Since(start).Seconds()
	}
	t1 := run(1)
	t4 := run(4)
	if t4 > 2*t1 {
		t.Fatalf("throughput scaled %0.fx with 4 workers; the global lock should prevent that", t4/t1)
	}
}

func TestSuperVertexRewriteCost(t *testing.T) {
	// The simulator's architectural trait: inserting into a large
	// adjacency rewrites the whole list, so insertion cost grows with
	// degree. Verify the rewrite really is a fresh copy (snapshot
	// isolation for readers).
	s := fastStore()
	for i := 0; i < 100; i++ {
		if err := s.AddEdge(graph.Edge{Src: 1, Dst: graph.VertexID(i), Type: graph.ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	var snapshot []graph.VertexID
	if err := s.Neighbors(1, graph.ETypeLike, 0, func(d graph.VertexID, _ graph.Properties) bool {
		snapshot = append(snapshot, d)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	// Mutate after taking the iterator's snapshot reference.
	if err := s.AddEdge(graph.Edge{Src: 1, Dst: 500, Type: graph.ETypeLike}); err != nil {
		t.Fatal(err)
	}
	if len(snapshot) != 100 {
		t.Fatalf("snapshot = %d", len(snapshot))
	}
	if deg, _ := s.Degree(1, graph.ETypeLike); deg != 101 {
		t.Fatalf("degree = %d", deg)
	}
}
