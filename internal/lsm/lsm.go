// Package lsm implements a leveled LSM-tree key-value store: the persistent
// layer of the previous-generation ByteGraph baseline (§2.2). It exists so
// the Fig. 8 comparison runs against a real log-structured merge engine
// rather than a stub: memtable skiplist, L0 overlapping runs, leveled
// non-overlapping runs below, Bloom filters, and size-tiered compaction.
//
// The engine deliberately exhibits the read behaviour the paper attributes
// to LSM storage: a point read probes the memtables, every overlapping L0
// table, and one table per deeper level, paying result-merge work that a
// Bw-tree read does not (§2.4). Table probes and compaction volume are
// counted so experiments can report read amplification and background
// write amplification.
package lsm

import (
	"bytes"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a DB. The zero value provides sensible defaults.
type Config struct {
	// MemtableBytes rotates the active memtable beyond this size.
	// Default 1 MiB.
	MemtableBytes int
	// L0Tables triggers an L0->L1 compaction when L0 holds this many
	// runs. Default 4.
	L0Tables int
	// LevelRatio is the target size multiplier between adjacent levels.
	// Default 10.
	LevelRatio int
	// BloomBitsPerKey sizes the per-table Bloom filters. Default 10.
	BloomBitsPerKey int
	// OpLatency simulates the round trip to a remote KV service: ByteGraph's
	// persistent layer is a *distributed* LSM KV store reached through a
	// proxy (§2.4), so every Get/Put/Delete pays a network hop. Zero (the
	// default) keeps the engine purely in-process for unit tests.
	OpLatency time.Duration
}

func (c Config) withDefaults() Config {
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 1 << 20
	}
	if c.L0Tables <= 0 {
		c.L0Tables = 4
	}
	if c.LevelRatio <= 0 {
		c.LevelRatio = 10
	}
	if c.BloomBitsPerKey <= 0 {
		c.BloomBitsPerKey = 10
	}
	return c
}

// Metrics counts the I/O-relevant events of the engine.
type Metrics struct {
	Puts            int64
	Gets            int64
	Deletes         int64
	TableProbes     int64 // SSTable point lookups performed (read fan-out)
	BloomSkips      int64 // probes avoided by Bloom filters
	Flushes         int64 // memtable -> L0 flushes
	Compactions     int64
	BytesFlushed    int64
	BytesCompacted  int64 // background write amplification
	TablesTotal     int64
	LevelsTotal     int64
	MemtableEntries int64
	ResidentBytes   int64 // bytes held by all tables and memtables
}

// DB is a single-node leveled LSM-tree. It is safe for concurrent use.
// Compaction runs inline on the write path once thresholds are crossed,
// which models the paper's observation that LSM maintenance competes with
// foreground work for CPU.
type DB struct {
	cfg Config

	mu     sync.RWMutex
	mem    *skiplist
	imm    []*skiplist // newest first
	levels [][]*sstable
	seq    atomic.Uint64
	nextID atomic.Uint64

	puts           atomic.Int64
	gets           atomic.Int64
	deletes        atomic.Int64
	tableProbes    atomic.Int64
	bloomSkips     atomic.Int64
	flushes        atomic.Int64
	compactions    atomic.Int64
	bytesFlushed   atomic.Int64
	bytesCompacted atomic.Int64
}

// Open creates an empty DB.
func Open(cfg Config) *DB {
	cfg = cfg.withDefaults()
	return &DB{cfg: cfg, mem: newSkiplist(1)}
}

// Put upserts key=value.
func (d *DB) Put(key, value []byte) {
	d.puts.Add(1)
	d.write(append([]byte(nil), key...), append([]byte(nil), value...), false)
}

// Delete writes a tombstone for key.
func (d *DB) Delete(key []byte) {
	d.deletes.Add(1)
	d.write(append([]byte(nil), key...), nil, true)
}

func (d *DB) write(key, value []byte, tombstone bool) {
	if d.cfg.OpLatency > 0 {
		time.Sleep(d.cfg.OpLatency)
	}
	seq := d.seq.Add(1)
	d.mu.Lock()
	d.mem.put(key, value, tombstone, seq)
	if d.mem.bytes() >= d.cfg.MemtableBytes {
		d.imm = append([]*skiplist{d.mem}, d.imm...)
		d.mem = newSkiplist(int64(seq))
		d.flushLocked()
		d.maybeCompactLocked()
	}
	d.mu.Unlock()
}

// Get returns the newest value of key.
func (d *DB) Get(key []byte) ([]byte, bool) {
	d.gets.Add(1)
	if d.cfg.OpLatency > 0 {
		time.Sleep(d.cfg.OpLatency)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v, tomb, ok := d.mem.get(key); ok {
		return returnValue(v, tomb)
	}
	for _, im := range d.imm {
		if v, tomb, ok := im.get(key); ok {
			return returnValue(v, tomb)
		}
	}
	// L0 runs overlap: probe newest first.
	if len(d.levels) > 0 {
		for _, t := range d.levels[0] {
			if !t.covers(key) {
				continue
			}
			if !t.filter.mayContain(key) {
				d.bloomSkips.Add(1)
				continue
			}
			d.tableProbes.Add(1)
			if e, ok := t.get(key); ok {
				return returnValue(e.value, e.tombstone)
			}
		}
	}
	// Deeper levels are sorted and non-overlapping: at most one table each.
	for lvl := 1; lvl < len(d.levels); lvl++ {
		t := findTable(d.levels[lvl], key)
		if t == nil {
			continue
		}
		if !t.filter.mayContain(key) {
			d.bloomSkips.Add(1)
			continue
		}
		d.tableProbes.Add(1)
		if e, ok := t.get(key); ok {
			return returnValue(e.value, e.tombstone)
		}
	}
	return nil, false
}

func returnValue(v []byte, tombstone bool) ([]byte, bool) {
	if tombstone {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// findTable binary-searches a sorted, non-overlapping level.
func findTable(level []*sstable, key []byte) *sstable {
	lo, hi := 0, len(level)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(level[mid].maxKey, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(level) && level[lo].covers(key) {
		return level[lo]
	}
	return nil
}

// flushLocked turns every immutable memtable into an L0 run. d.mu held.
func (d *DB) flushLocked() {
	for len(d.imm) > 0 {
		im := d.imm[len(d.imm)-1] // oldest first so L0 order stays newest-first
		d.imm = d.imm[:len(d.imm)-1]
		entries := im.entries()
		if len(entries) == 0 {
			continue
		}
		t := buildSSTable(d.nextID.Add(1), entries, d.cfg.BloomBitsPerKey)
		if len(d.levels) == 0 {
			d.levels = append(d.levels, nil)
		}
		d.levels[0] = append([]*sstable{t}, d.levels[0]...)
		d.flushes.Add(1)
		d.bytesFlushed.Add(t.bytes)
	}
}

// maybeCompactLocked runs leveled compaction until every level is within
// budget. d.mu held.
func (d *DB) maybeCompactLocked() {
	if len(d.levels) == 0 {
		return
	}
	// L0 -> L1 when L0 has too many runs.
	for len(d.levels[0]) >= d.cfg.L0Tables {
		d.compactIntoLocked(0)
	}
	// Deeper levels: compact when oversized relative to the ratio.
	budget := int64(d.cfg.MemtableBytes) * int64(d.cfg.LevelRatio)
	for lvl := 1; lvl < len(d.levels); lvl++ {
		for levelBytes(d.levels[lvl]) > budget {
			d.compactIntoLocked(lvl)
		}
		budget *= int64(d.cfg.LevelRatio)
	}
}

func levelBytes(level []*sstable) int64 {
	var n int64
	for _, t := range level {
		n += t.bytes
	}
	return n
}

// compactIntoLocked merges all of level lvl plus the overlapping tables of
// lvl+1 into lvl+1. d.mu held.
func (d *DB) compactIntoLocked(lvl int) {
	src := d.levels[lvl]
	if len(src) == 0 {
		return
	}
	if len(d.levels) == lvl+1 {
		d.levels = append(d.levels, nil)
	}
	lo, hi := src[0].minKey, src[0].maxKey
	for _, t := range src[1:] {
		if bytes.Compare(t.minKey, lo) < 0 {
			lo = t.minKey
		}
		if bytes.Compare(t.maxKey, hi) > 0 {
			hi = t.maxKey
		}
	}
	var overlapping, untouched []*sstable
	for _, t := range d.levels[lvl+1] {
		if t.overlaps(lo, hi) {
			overlapping = append(overlapping, t)
		} else {
			untouched = append(untouched, t)
		}
	}
	// Newest-first merge priority: src runs (ordered newest first in L0)
	// shadow the older data below; mergeRuns resolves by seq anyway.
	runs := make([][]entry, 0, len(src)+len(overlapping))
	for _, t := range src {
		runs = append(runs, t.entries)
	}
	for _, t := range overlapping {
		runs = append(runs, t.entries)
	}
	// Tombstones may only be dropped when no level below the destination
	// holds any data the tombstone could be shadowing.
	bottom := true
	for i := lvl + 2; i < len(d.levels); i++ {
		if len(d.levels[i]) > 0 {
			bottom = false
			break
		}
	}
	merged := mergeRuns(runs, bottom)
	var out []*sstable
	// Split the merged run into tables of roughly memtable size so deeper
	// levels stay granular.
	target := d.cfg.MemtableBytes
	start, sz := 0, 0
	for i, e := range merged {
		sz += len(e.key) + len(e.value) + 16
		if sz >= target {
			out = append(out, buildSSTable(d.nextID.Add(1), merged[start:i+1], d.cfg.BloomBitsPerKey))
			start, sz = i+1, 0
		}
	}
	if start < len(merged) {
		out = append(out, buildSSTable(d.nextID.Add(1), merged[start:], d.cfg.BloomBitsPerKey))
	}
	var moved int64
	for _, t := range out {
		moved += t.bytes
	}
	d.levels[lvl] = nil
	newLevel := append(untouched, out...)
	sortTables(newLevel)
	d.levels[lvl+1] = newLevel
	d.compactions.Add(1)
	d.bytesCompacted.Add(moved)
}

func sortTables(tables []*sstable) {
	for i := 1; i < len(tables); i++ {
		for j := i; j > 0 && bytes.Compare(tables[j].minKey, tables[j-1].minKey) < 0; j-- {
			tables[j], tables[j-1] = tables[j-1], tables[j]
		}
	}
}

// Stats returns a metrics snapshot.
func (d *DB) Stats() Metrics {
	d.mu.RLock()
	var tables, lvls, resident int64
	for _, l := range d.levels {
		if len(l) > 0 {
			lvls++
		}
		tables += int64(len(l))
		for _, t := range l {
			resident += t.bytes
		}
	}
	resident += int64(d.mem.bytes())
	for _, im := range d.imm {
		resident += int64(im.bytes())
	}
	memEntries := int64(d.mem.len())
	d.mu.RUnlock()
	return Metrics{
		Puts:            d.puts.Load(),
		Gets:            d.gets.Load(),
		Deletes:         d.deletes.Load(),
		TableProbes:     d.tableProbes.Load(),
		BloomSkips:      d.bloomSkips.Load(),
		Flushes:         d.flushes.Load(),
		Compactions:     d.compactions.Load(),
		BytesFlushed:    d.bytesFlushed.Load(),
		BytesCompacted:  d.bytesCompacted.Load(),
		TablesTotal:     tables,
		LevelsTotal:     lvls,
		MemtableEntries: memEntries,
		ResidentBytes:   resident,
	}
}

// Scan iterates live keys in [from, to) in order, invoking fn until it
// returns false or limit entries are delivered (limit <= 0: unlimited).
func (d *DB) Scan(from, to []byte, limit int, fn func(key, value []byte) bool) {
	d.mu.RLock()
	runs := [][]entry{d.mem.entries()}
	for _, im := range d.imm {
		runs = append(runs, im.entries())
	}
	for _, lvl := range d.levels {
		for _, t := range lvl {
			if to != nil && len(t.entries) > 0 && bytes.Compare(t.minKey, to) >= 0 {
				continue
			}
			runs = append(runs, t.entries)
		}
	}
	d.mu.RUnlock()
	merged := mergeRuns(runs, true)
	delivered := 0
	for _, e := range merged {
		if from != nil && bytes.Compare(e.key, from) < 0 {
			continue
		}
		if to != nil && bytes.Compare(e.key, to) >= 0 {
			return
		}
		if !fn(e.key, e.value) {
			return
		}
		delivered++
		if limit > 0 && delivered >= limit {
			return
		}
	}
}
