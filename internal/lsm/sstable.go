package lsm

import (
	"bytes"
	"hash/fnv"
	"sort"
)

// entry is one versioned key-value record.
type entry struct {
	key       []byte
	value     []byte
	tombstone bool
	seq       uint64
}

// bloom is a fixed-size Bloom filter with double hashing.
type bloom struct {
	bits []uint64
	m    uint32 // number of bits
	k    uint32 // number of probes
}

func newBloom(n int, bitsPerKey int) *bloom {
	if n < 1 {
		n = 1
	}
	m := uint32(n * bitsPerKey)
	if m < 64 {
		m = 64
	}
	k := uint32(float64(bitsPerKey) * 0.69) // ln2 * bits/key
	if k < 1 {
		k = 1
	}
	if k > 8 {
		k = 8
	}
	return &bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

func bloomHash(key []byte) (uint32, uint32) {
	h := fnv.New64a()
	h.Write(key)
	v := h.Sum64()
	return uint32(v), uint32(v >> 32)
}

func (b *bloom) add(key []byte) {
	h1, h2 := bloomHash(key)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + i*h2) % b.m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
}

func (b *bloom) mayContain(key []byte) bool {
	h1, h2 := bloomHash(key)
	for i := uint32(0); i < b.k; i++ {
		bit := (h1 + i*h2) % b.m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// sstable is one immutable sorted run. Entries are unique by key (the
// newest version wins at build time).
type sstable struct {
	id      uint64
	entries []entry
	filter  *bloom
	minKey  []byte
	maxKey  []byte
	bytes   int64
}

// buildSSTable creates a table from entries that are already sorted by key
// and deduplicated.
func buildSSTable(id uint64, entries []entry, bitsPerKey int) *sstable {
	t := &sstable{id: id, entries: entries, filter: newBloom(len(entries), bitsPerKey)}
	for _, e := range entries {
		t.filter.add(e.key)
		t.bytes += int64(len(e.key) + len(e.value) + 16)
	}
	if len(entries) > 0 {
		t.minKey = entries[0].key
		t.maxKey = entries[len(entries)-1].key
	}
	return t
}

// covers reports whether key falls inside the table's key range.
func (t *sstable) covers(key []byte) bool {
	return len(t.entries) > 0 &&
		bytes.Compare(key, t.minKey) >= 0 &&
		bytes.Compare(key, t.maxKey) <= 0
}

// get searches the table. found=false means the key is absent from this
// table (the caller continues down the read path).
func (t *sstable) get(key []byte) (e entry, found bool) {
	idx := sort.Search(len(t.entries), func(i int) bool {
		return bytes.Compare(t.entries[i].key, key) >= 0
	})
	if idx < len(t.entries) && bytes.Equal(t.entries[idx].key, key) {
		return t.entries[idx], true
	}
	return entry{}, false
}

// overlaps reports whether the table's range intersects [lo, hi].
func (t *sstable) overlaps(lo, hi []byte) bool {
	if len(t.entries) == 0 {
		return false
	}
	return bytes.Compare(t.minKey, hi) <= 0 && bytes.Compare(lo, t.maxKey) <= 0
}

// mergeRuns k-way merges sorted runs into one deduplicated run; among
// duplicate keys the highest sequence number wins. dropTombstones removes
// deletion markers (legal only when merging into the bottommost level).
func mergeRuns(runs [][]entry, dropTombstones bool) []entry {
	type cursor struct {
		run []entry
		idx int
	}
	cursors := make([]*cursor, 0, len(runs))
	total := 0
	for _, r := range runs {
		if len(r) > 0 {
			cursors = append(cursors, &cursor{run: r})
			total += len(r)
		}
	}
	out := make([]entry, 0, total)
	for {
		var best *cursor
		for _, c := range cursors {
			if c.idx >= len(c.run) {
				continue
			}
			if best == nil {
				best = c
				continue
			}
			cmp := bytes.Compare(c.run[c.idx].key, best.run[best.idx].key)
			if cmp < 0 || (cmp == 0 && c.run[c.idx].seq > best.run[best.idx].seq) {
				best = c
			}
		}
		if best == nil {
			return out
		}
		winner := best.run[best.idx]
		// Advance every cursor past this key (older versions are shadowed).
		for _, c := range cursors {
			for c.idx < len(c.run) && bytes.Equal(c.run[c.idx].key, winner.key) {
				c.idx++
			}
		}
		if winner.tombstone && dropTombstones {
			continue
		}
		out = append(out, winner)
	}
}
