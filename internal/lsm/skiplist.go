package lsm

import (
	"bytes"
	"math/rand"
	"sync"
)

const maxSkipLevel = 12

// skipNode is one node of the memtable skiplist. A nil value with
// tombstone set records a deletion.
type skipNode struct {
	key       []byte
	value     []byte
	tombstone bool
	seq       uint64
	next      [maxSkipLevel]*skipNode
}

// skiplist is an ordered in-memory map from key to (value, tombstone).
// Later writes to the same key overwrite in place, keeping the newest
// sequence number. It is safe for concurrent use.
type skiplist struct {
	mu    sync.RWMutex
	head  *skipNode
	level int
	rng   *rand.Rand
	size  int // approximate bytes
	count int
}

func newSkiplist(seed int64) *skiplist {
	return &skiplist{
		head:  &skipNode{},
		level: 1,
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < maxSkipLevel && s.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// put inserts or overwrites key.
func (s *skiplist) put(key, value []byte, tombstone bool, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var update [maxSkipLevel]*skipNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		s.size += len(value) - len(n.value)
		n.value = value
		n.tombstone = tombstone
		n.seq = seq
		return
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &skipNode{key: key, value: value, tombstone: tombstone, seq: seq}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.size += len(key) + len(value) + 64
	s.count++
}

// get returns the newest entry for key.
func (s *skiplist) get(key []byte) (value []byte, tombstone, found bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
	}
	if n := x.next[0]; n != nil && bytes.Equal(n.key, key) {
		return n.value, n.tombstone, true
	}
	return nil, false, false
}

// entries returns every node in key order (used to build SSTables and
// merge iterators).
func (s *skiplist) entries() []entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]entry, 0, s.count)
	for n := s.head.next[0]; n != nil; n = n.next[0] {
		out = append(out, entry{key: n.key, value: n.value, tombstone: n.tombstone, seq: n.seq})
	}
	return out
}

func (s *skiplist) bytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

func (s *skiplist) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}
