package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	d := Open(Config{})
	d.Put([]byte("k"), []byte("v"))
	v, ok := d.Get([]byte("k"))
	if !ok || string(v) != "v" {
		t.Fatalf("get = %q %v", v, ok)
	}
	if _, ok := d.Get([]byte("missing")); ok {
		t.Fatal("found missing key")
	}
}

func TestOverwriteAndDelete(t *testing.T) {
	d := Open(Config{})
	d.Put([]byte("k"), []byte("v1"))
	d.Put([]byte("k"), []byte("v2"))
	if v, _ := d.Get([]byte("k")); string(v) != "v2" {
		t.Fatalf("get = %q, want v2", v)
	}
	d.Delete([]byte("k"))
	if _, ok := d.Get([]byte("k")); ok {
		t.Fatal("deleted key visible")
	}
}

func TestFlushAndCompaction(t *testing.T) {
	d := Open(Config{MemtableBytes: 1 << 10, L0Tables: 2})
	val := bytes.Repeat([]byte("x"), 64)
	for i := 0; i < 500; i++ {
		d.Put([]byte(fmt.Sprintf("key-%05d", i)), val)
	}
	s := d.Stats()
	if s.Flushes == 0 {
		t.Fatal("no memtable flushes")
	}
	if s.Compactions == 0 {
		t.Fatal("no compactions")
	}
	if s.BytesCompacted == 0 {
		t.Fatal("compaction moved no bytes")
	}
	// All keys remain readable across levels.
	for i := 0; i < 500; i++ {
		if _, ok := d.Get([]byte(fmt.Sprintf("key-%05d", i))); !ok {
			t.Fatalf("key-%05d lost", i)
		}
	}
}

func TestDeleteSurvivesCompaction(t *testing.T) {
	d := Open(Config{MemtableBytes: 512, L0Tables: 2})
	val := bytes.Repeat([]byte("y"), 32)
	for i := 0; i < 100; i++ {
		d.Put([]byte(fmt.Sprintf("k%03d", i)), val)
	}
	for i := 0; i < 100; i += 2 {
		d.Delete([]byte(fmt.Sprintf("k%03d", i)))
	}
	// Force more churn so tombstones flow through compactions.
	for i := 100; i < 200; i++ {
		d.Put([]byte(fmt.Sprintf("k%03d", i)), val)
	}
	for i := 0; i < 100; i++ {
		_, ok := d.Get([]byte(fmt.Sprintf("k%03d", i)))
		if i%2 == 0 && ok {
			t.Fatalf("k%03d deleted but visible", i)
		}
		if i%2 == 1 && !ok {
			t.Fatalf("k%03d lost", i)
		}
	}
}

func TestReadPathProbesMultipleTables(t *testing.T) {
	d := Open(Config{MemtableBytes: 256, L0Tables: 100}) // no compaction: L0 piles up
	val := bytes.Repeat([]byte("z"), 32)
	for i := 0; i < 200; i++ {
		d.Put([]byte(fmt.Sprintf("k%04d", i%20)), val) // heavy overwrites across runs
	}
	s := d.Stats()
	if s.TablesTotal < 4 {
		t.Fatalf("tables = %d, want several L0 runs", s.TablesTotal)
	}
	before := d.Stats().TableProbes
	for i := 0; i < 20; i++ {
		d.Get([]byte(fmt.Sprintf("k%04d", i)))
	}
	probes := d.Stats().TableProbes - before
	if probes == 0 {
		t.Fatal("reads never reached the tables")
	}
}

func TestBloomFilterSkips(t *testing.T) {
	d := Open(Config{MemtableBytes: 256, L0Tables: 100})
	val := bytes.Repeat([]byte("w"), 32)
	for i := 0; i < 100; i++ {
		d.Put([]byte(fmt.Sprintf("present-%04d", i)), val)
	}
	before := d.Stats().BloomSkips
	// Absent keys that sort inside the tables' key ranges, so only the
	// Bloom filter can reject them without a probe.
	for i := 0; i < 99; i++ {
		d.Get([]byte(fmt.Sprintf("present-%04d-absent", i)))
	}
	if got := d.Stats().BloomSkips - before; got == 0 {
		t.Fatal("bloom filters never skipped a probe for absent keys")
	}
}

func TestScan(t *testing.T) {
	d := Open(Config{MemtableBytes: 512, L0Tables: 2})
	for i := 0; i < 100; i++ {
		d.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	d.Delete([]byte("k050"))
	var keys []string
	d.Scan([]byte("k045"), []byte("k055"), 0, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	want := []string{"k045", "k046", "k047", "k048", "k049", "k051", "k052", "k053", "k054"}
	if len(keys) != len(want) {
		t.Fatalf("scan = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("scan[%d] = %s, want %s", i, keys[i], want[i])
		}
	}
	// Limited scan.
	n := 0
	d.Scan(nil, nil, 5, func(k, v []byte) bool { n++; return true })
	if n != 5 {
		t.Fatalf("limited scan = %d, want 5", n)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	d := Open(Config{MemtableBytes: 2 << 10, L0Tables: 3})
	var wg sync.WaitGroup
	const workers, per = 6, 300
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("w%d-%04d", w, i))
				d.Put(key, []byte("v"))
				if v, ok := d.Get(key); !ok || string(v) != "v" {
					t.Errorf("read-own-write failed for %s", key)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i += 17 {
			if _, ok := d.Get([]byte(fmt.Sprintf("w%d-%04d", w, i))); !ok {
				t.Fatalf("w%d-%04d lost", w, i)
			}
		}
	}
}

// TestPropertyModelCheck compares the LSM against a map under random ops.
func TestPropertyModelCheck(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Open(Config{MemtableBytes: 256, L0Tables: 2, LevelRatio: 2})
		model := map[string]string{}
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("k%02d", rng.Intn(50))
			if rng.Intn(4) == 0 {
				d.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprintf("v%d", i)
				d.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		for k, v := range model {
			got, ok := d.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		// Scan agrees with the model.
		got := map[string]string{}
		d.Scan(nil, nil, 0, func(k, v []byte) bool {
			got[string(k)] = string(v)
			return true
		})
		if len(got) != len(model) {
			return false
		}
		for k, v := range model {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSkiplistOrdering(t *testing.T) {
	s := newSkiplist(1)
	rng := rand.New(rand.NewSource(2))
	for _, i := range rng.Perm(500) {
		s.put([]byte(fmt.Sprintf("k%04d", i)), []byte("v"), false, uint64(i))
	}
	entries := s.entries()
	if len(entries) != 500 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if bytes.Compare(entries[i-1].key, entries[i].key) >= 0 {
			t.Fatalf("order violation at %d", i)
		}
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(keys [][]byte) bool {
		b := newBloom(len(keys), 10)
		for _, k := range keys {
			b.add(k)
		}
		for _, k := range keys {
			if !b.mayContain(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRunsNewestWins(t *testing.T) {
	old := []entry{{key: []byte("a"), value: []byte("old"), seq: 1}}
	new_ := []entry{{key: []byte("a"), value: []byte("new"), seq: 2}}
	out := mergeRuns([][]entry{old, new_}, false)
	if len(out) != 1 || string(out[0].value) != "new" {
		t.Fatalf("merge = %+v", out)
	}
	// Tombstone dropping at the bottom level.
	tomb := []entry{{key: []byte("a"), tombstone: true, seq: 3}}
	out = mergeRuns([][]entry{old, tomb}, true)
	if len(out) != 0 {
		t.Fatalf("tombstone not dropped: %+v", out)
	}
	out = mergeRuns([][]entry{old, tomb}, false)
	if len(out) != 1 || !out[0].tombstone {
		t.Fatalf("tombstone must survive non-bottom merge: %+v", out)
	}
}
