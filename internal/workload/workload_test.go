package workload

import (
	"testing"

	"bg3/internal/core"
	"bg3/internal/graph"
)

func newStore(t *testing.T) graph.Store {
	t.Helper()
	e, err := core.New(core.Options{SplitThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

func TestDouyinFollowMix(t *testing.T) {
	g := NewDouyinFollow(1000, 1)
	writes, reads := 0, 0
	for i := 0; i < 10000; i++ {
		op := g.Next()
		switch op.Kind {
		case OpAddEdge:
			writes++
		case OpNeighbors:
			reads++
		default:
			t.Fatalf("unexpected op kind %d", op.Kind)
		}
	}
	frac := float64(writes) / 10000
	if frac < 0.005 || frac > 0.02 {
		t.Fatalf("write fraction = %.4f, want ~0.01", frac)
	}
	_ = reads
}

func TestRiskControlStrictRatio(t *testing.T) {
	g := NewRiskControl(1000, 1)
	writes, reads := 0, 0
	for i := 0; i < 1000; i++ {
		op := g.Next()
		if op.Kind == OpAddEdge {
			writes++
		} else {
			reads++
			if op.Hops < 5 || op.Hops > 10 {
				t.Fatalf("hops = %d, want 5..10", op.Hops)
			}
		}
	}
	if writes != reads {
		t.Fatalf("writes=%d reads=%d, want strict 1:1", writes, reads)
	}
}

func TestRecommendationHopMix(t *testing.T) {
	g := NewRecommendation(1000, 1)
	hops := map[int]int{}
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Kind != OpKHop {
			t.Fatal("recommendation must be read-only")
		}
		hops[op.Hops]++
	}
	f1 := float64(hops[1]) / 10000
	f2 := float64(hops[2]) / 10000
	f3 := float64(hops[3]) / 10000
	if f1 < 0.65 || f1 > 0.75 || f2 < 0.15 || f2 > 0.25 || f3 < 0.05 || f3 > 0.15 {
		t.Fatalf("hop mix = %.2f/%.2f/%.2f, want ~0.70/0.20/0.10", f1, f2, f3)
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewDouyinFollow(10000, 7)
	counts := map[graph.VertexID]int{}
	for i := 0; i < 20000; i++ {
		counts[g.Next().Src]++
	}
	// Vertex 0 must be far more popular than the median vertex.
	if counts[0] < 1000 {
		t.Fatalf("hottest vertex drawn %d times out of 20000; distribution not skewed", counts[0])
	}
}

func TestPreloadAndRun(t *testing.T) {
	s := newStore(t)
	if err := Preload(s, PreloadSpec{Vertices: 200, Edges: 2000, Type: graph.ETypeFollow, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// The hottest vertex should have picked up a big neighborhood.
	deg, err := s.Degree(0, graph.ETypeFollow)
	if err != nil {
		t.Fatal(err)
	}
	if deg < 50 {
		t.Fatalf("hot vertex degree = %d, want power-law head", deg)
	}
	res := Run(s, NewDouyinFollow(200, 2), 4, 200, 3)
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Ops != 800 || res.Throughput <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunForDuration(t *testing.T) {
	s := newStore(t)
	if err := Preload(s, PreloadSpec{Vertices: 100, Edges: 500, Type: graph.ETypeFollow, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	res := RunFor(s, NewRecommendation(100, 1), 2, 50_000_000, 4) // 50ms
	if res.Ops == 0 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestGeneratorClonesIndependent(t *testing.T) {
	g := NewRiskControl(100, 1)
	a := g.Clone(10)
	b := g.Clone(11)
	same := true
	for i := 0; i < 20; i++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("clones with different seeds produced identical streams")
	}
}

func TestBatchInsertApplies(t *testing.T) {
	s := newStore(t)
	g := NewBatchInsert(100, 8, 1)
	for i := 0; i < 50; i++ {
		op := g.Next()
		if op.Kind != OpBatchInsert || op.Batch != 8 {
			t.Fatalf("op = %+v, want OpBatchInsert with Batch=8", op)
		}
		if err := Apply(s, op); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for v := 0; v < 100; v++ {
		d, err := s.Degree(graph.VertexID(v), graph.ETypeFollow)
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	// 50 batches x 8 mutations, minus (src,dst) upsert collisions.
	if total < 100 || total > 400 {
		t.Fatalf("total edges = %d after 400 batched upserts", total)
	}
}

func TestMixedReadWriteStrictRatio(t *testing.T) {
	g := NewMixedReadWrite(100, 3)
	writes, reads := 0, 0
	for i := 0; i < 1000; i++ {
		switch op := g.Next(); op.Kind {
		case OpAddEdge:
			writes++
		case OpNeighbors:
			reads++
		default:
			t.Fatalf("unexpected op kind %d", op.Kind)
		}
	}
	if writes != reads {
		t.Fatalf("writes=%d reads=%d, want strict 1:1", writes, reads)
	}
}

func TestInsertOnlyIsPureWrites(t *testing.T) {
	g := NewInsertOnly(100, 5)
	for i := 0; i < 500; i++ {
		if op := g.Next(); op.Kind != OpAddEdge {
			t.Fatalf("op kind %d, want OpAddEdge only", op.Kind)
		}
	}
	s := newStore(t)
	res := Run(s, g, 4, 100, 9)
	if res.Errors != 0 || res.Ops != 400 {
		t.Fatalf("result = %+v", res)
	}
}

func TestPreloadParallel(t *testing.T) {
	s := newStore(t)
	if err := PreloadParallel(s, PreloadSpec{Vertices: 100, Edges: 4000, Type: graph.ETypeFollow, Seed: 2}, 16); err != nil {
		t.Fatal(err)
	}
	total := 0
	for v := 0; v < 100; v++ {
		d, err := s.Degree(graph.VertexID(v), graph.ETypeFollow)
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	// Upserts dedup identical (src,dst) pairs — with a 100-vertex universe
	// and power-law sources, roughly half the attempts repeat — so the
	// distinct-edge count is well below the attempt count but substantial.
	if total < 1000 || total > 4000 {
		t.Fatalf("total edges = %d", total)
	}
}
