// Package workload reproduces the three production workloads of Table 1
// at laptop scale: Douyin Follow (99% one-hop reads, 1% edge inserts),
// Financial Risk Control (50/50 read-write with multi-hop reads and TTL
// ingest), and Douyin Recommendation (read-only multi-hop: 70% 1-hop,
// 20% 2-hop, 10% 3-hop). Vertex popularity follows a power-law (Zipf)
// distribution, as the paper's micro-benchmarks do ("we used Douyin
// follow data and simulated realistic access patterns with a power-law
// benchmark").
package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"bg3/internal/graph"
	"bg3/internal/metrics"
)

// OpKind discriminates generated operations.
type OpKind int

// Operation kinds.
const (
	OpAddEdge OpKind = iota
	OpNeighbors
	OpKHop
	// OpBatchInsert applies Batch edge upserts as one atomic mutation batch
	// (one WAL commit group on a replicated store).
	OpBatchInsert
)

// Op is one generated operation.
type Op struct {
	Kind OpKind
	Src  graph.VertexID
	Dst  graph.VertexID
	Type graph.EdgeType
	Hops int
	// Limit bounds result size for read ops.
	Limit int
	// Batch is the mutation count for OpBatchInsert.
	Batch int
}

// Generator produces a stream of operations. Implementations must be safe
// to call from a single goroutine per Generator instance; the Runner gives
// each worker its own clone.
type Generator interface {
	// Name identifies the workload in output.
	Name() string
	// Next produces the next operation.
	Next() Op
	// Clone returns an independent generator with the given seed.
	Clone(seed int64) Generator
}

// zipfSource draws power-law-distributed vertex IDs in [0, n).
type zipfSource struct {
	z *rand.Zipf
}

func newZipfSource(rng *rand.Rand, n int, s float64) zipfSource {
	if s <= 1 {
		s = 1.2
	}
	return zipfSource{z: rand.NewZipf(rng, s, 1, uint64(n-1))}
}

func (z zipfSource) draw() graph.VertexID { return graph.VertexID(z.z.Uint64()) }

// DouyinFollow is the follow-graph serving workload: 99% one-hop neighbor
// queries, 1% single-edge inserts.
type DouyinFollow struct {
	rng      *rand.Rand
	users    int
	zipf     zipfSource
	writePct int // percent of ops that are writes (default 1)
}

// NewDouyinFollow creates the workload over a universe of users.
func NewDouyinFollow(users int, seed int64) *DouyinFollow {
	rng := rand.New(rand.NewSource(seed))
	return &DouyinFollow{rng: rng, users: users, zipf: newZipfSource(rng, users, 1.2), writePct: 1}
}

// Name implements Generator.
func (w *DouyinFollow) Name() string { return "douyin-follow" }

// Clone implements Generator.
func (w *DouyinFollow) Clone(seed int64) Generator {
	c := NewDouyinFollow(w.users, seed)
	c.writePct = w.writePct
	return c
}

// Next implements Generator.
func (w *DouyinFollow) Next() Op {
	if w.rng.Intn(100) < w.writePct {
		return Op{Kind: OpAddEdge, Src: w.zipf.draw(), Dst: graph.VertexID(w.rng.Intn(w.users)), Type: graph.ETypeFollow}
	}
	return Op{Kind: OpNeighbors, Src: w.zipf.draw(), Type: graph.ETypeFollow, Limit: 128}
}

// RiskControl is the financial risk-control workload: a strict 1:1 mix of
// transfer-edge inserts and bounded multi-hop reads (5–10 hops, ~100
// edges), over a TTL-managed graph.
type RiskControl struct {
	rng      *rand.Rand
	accounts int
	zipf     zipfSource
	flip     bool
}

// NewRiskControl creates the workload over a universe of accounts.
func NewRiskControl(accounts int, seed int64) *RiskControl {
	rng := rand.New(rand.NewSource(seed))
	return &RiskControl{rng: rng, accounts: accounts, zipf: newZipfSource(rng, accounts, 1.2)}
}

// Name implements Generator.
func (w *RiskControl) Name() string { return "financial-risk-control" }

// Clone implements Generator.
func (w *RiskControl) Clone(seed int64) Generator { return NewRiskControl(w.accounts, seed) }

// Next implements Generator: alternate write and read for the strict 1:1
// ratio of Table 1.
func (w *RiskControl) Next() Op {
	w.flip = !w.flip
	if w.flip {
		return Op{Kind: OpAddEdge, Src: w.zipf.draw(), Dst: graph.VertexID(w.rng.Intn(w.accounts)), Type: graph.ETypeTransfer}
	}
	return Op{
		Kind: OpKHop, Src: w.zipf.draw(), Type: graph.ETypeTransfer,
		Hops: 5 + w.rng.Intn(6), Limit: 100,
	}
}

// Recommendation is the read-only multi-hop workload: 70% 1-hop, 20%
// 2-hop, 10% 3-hop neighbor queries.
type Recommendation struct {
	rng   *rand.Rand
	users int
	zipf  zipfSource
}

// NewRecommendation creates the workload over a universe of users.
func NewRecommendation(users int, seed int64) *Recommendation {
	rng := rand.New(rand.NewSource(seed))
	return &Recommendation{rng: rng, users: users, zipf: newZipfSource(rng, users, 1.2)}
}

// Name implements Generator.
func (w *Recommendation) Name() string { return "douyin-recommendation" }

// Clone implements Generator.
func (w *Recommendation) Clone(seed int64) Generator { return NewRecommendation(w.users, seed) }

// Next implements Generator.
func (w *Recommendation) Next() Op {
	hops := 1
	switch p := w.rng.Intn(100); {
	case p < 70:
		hops = 1
	case p < 90:
		hops = 2
	default:
		hops = 3
	}
	return Op{Kind: OpKHop, Src: w.zipf.draw(), Type: graph.ETypeFollow, Hops: hops, Limit: 32}
}

// InsertOnly is a pure write workload: every op is a single-edge upsert.
// It exists to measure the write path in isolation — in particular as the
// single-append baseline the group-commit scenarios are compared against.
type InsertOnly struct {
	rng   *rand.Rand
	users int
	zipf  zipfSource
}

// NewInsertOnly creates the workload over a universe of users.
func NewInsertOnly(users int, seed int64) *InsertOnly {
	rng := rand.New(rand.NewSource(seed))
	return &InsertOnly{rng: rng, users: users, zipf: newZipfSource(rng, users, 1.2)}
}

// Name implements Generator.
func (w *InsertOnly) Name() string { return "insert-only" }

// Clone implements Generator.
func (w *InsertOnly) Clone(seed int64) Generator { return NewInsertOnly(w.users, seed) }

// Next implements Generator.
func (w *InsertOnly) Next() Op {
	return Op{Kind: OpAddEdge, Src: w.zipf.draw(), Dst: graph.VertexID(w.rng.Intn(w.users)), Type: graph.ETypeFollow}
}

// BatchInsert is the bulk-ingest workload: every op is an atomic batch of
// edge upserts (ApplyBatch), modeling importers and write-behind caches
// that hand the store pre-grouped mutations.
type BatchInsert struct {
	rng   *rand.Rand
	users int
	batch int
	zipf  zipfSource
}

// NewBatchInsert creates the workload; batch is the mutations per op
// (default 16 when <= 0).
func NewBatchInsert(users int, batch int, seed int64) *BatchInsert {
	if batch <= 0 {
		batch = 16
	}
	rng := rand.New(rand.NewSource(seed))
	return &BatchInsert{rng: rng, users: users, batch: batch, zipf: newZipfSource(rng, users, 1.2)}
}

// Name implements Generator.
func (w *BatchInsert) Name() string { return "batch-insert" }

// Clone implements Generator.
func (w *BatchInsert) Clone(seed int64) Generator { return NewBatchInsert(w.users, w.batch, seed) }

// Next implements Generator.
func (w *BatchInsert) Next() Op {
	return Op{
		Kind: OpBatchInsert, Src: w.zipf.draw(),
		Dst: graph.VertexID(w.rng.Intn(w.users)), Type: graph.ETypeFollow,
		Batch: w.batch,
	}
}

// MixedReadWrite is a strict 50/50 mix of single-edge upserts and one-hop
// neighbor reads — the write-heavy serving pattern where group commit must
// amortize write latency without starving readers.
type MixedReadWrite struct {
	rng   *rand.Rand
	users int
	zipf  zipfSource
	flip  bool
}

// NewMixedReadWrite creates the workload over a universe of users.
func NewMixedReadWrite(users int, seed int64) *MixedReadWrite {
	rng := rand.New(rand.NewSource(seed))
	return &MixedReadWrite{rng: rng, users: users, zipf: newZipfSource(rng, users, 1.2)}
}

// Name implements Generator.
func (w *MixedReadWrite) Name() string { return "mixed-50-50" }

// Clone implements Generator.
func (w *MixedReadWrite) Clone(seed int64) Generator { return NewMixedReadWrite(w.users, seed) }

// Next implements Generator: alternate write and read for a strict 1:1 mix.
func (w *MixedReadWrite) Next() Op {
	w.flip = !w.flip
	if w.flip {
		return Op{Kind: OpAddEdge, Src: w.zipf.draw(), Dst: graph.VertexID(w.rng.Intn(w.users)), Type: graph.ETypeFollow}
	}
	return Op{Kind: OpNeighbors, Src: w.zipf.draw(), Type: graph.ETypeFollow, Limit: 64}
}

// FullAdjacencyScan is the super-vertex serving workload: unbounded
// full-adjacency neighbor scans, with slightly over half the queries
// aimed at a handful of designated super-vertices (IDs 1..Supers, loaded
// with ~100k edges each by the bench harness) and the rest zipfian over
// the ordinary user universe. It isolates the sequential-scan path the
// packed CSR edge blocks accelerate.
type FullAdjacencyScan struct {
	rng    *rand.Rand
	users  int
	supers int
	zipf   zipfSource
}

// NewFullAdjacencyScan creates the workload; supers is the count of
// designated super-vertices (default 2 when <= 0), occupying vertex IDs
// 1..supers.
func NewFullAdjacencyScan(users, supers int, seed int64) *FullAdjacencyScan {
	if supers <= 0 {
		supers = 2
	}
	rng := rand.New(rand.NewSource(seed))
	return &FullAdjacencyScan{rng: rng, users: users, supers: supers, zipf: newZipfSource(rng, users, 1.2)}
}

// Name implements Generator.
func (w *FullAdjacencyScan) Name() string { return "full-adjacency-scan" }

// Clone implements Generator.
func (w *FullAdjacencyScan) Clone(seed int64) Generator {
	return NewFullAdjacencyScan(w.users, w.supers, seed)
}

// Next implements Generator.
func (w *FullAdjacencyScan) Next() Op {
	if w.rng.Intn(100) < 55 {
		// Full scan of one super-vertex's adjacency (limit 0: unbounded).
		return Op{Kind: OpNeighbors, Src: graph.VertexID(1 + w.rng.Intn(w.supers)), Type: graph.ETypeFollow}
	}
	return Op{Kind: OpNeighbors, Src: w.zipf.draw(), Type: graph.ETypeFollow}
}

// PreloadSpec describes the initial graph built before measurement.
type PreloadSpec struct {
	Vertices int
	Edges    int
	Type     graph.EdgeType
	ZipfS    float64 // skew of source popularity (default 1.2)
	Seed     int64
}

// Preload populates store with a power-law graph.
func Preload(store graph.Store, spec PreloadSpec) error {
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := newZipfSource(rng, spec.Vertices, spec.ZipfS)
	ts := make([]byte, 8)
	for i := 0; i < spec.Edges; i++ {
		src := zipf.draw()
		dst := graph.VertexID(rng.Intn(spec.Vertices))
		if err := store.AddEdge(graph.Edge{
			Src: src, Dst: dst, Type: spec.Type,
			Props: graph.Properties{{Name: "ts", Value: ts}},
		}); err != nil {
			return fmt.Errorf("workload: preload edge %d: %w", i, err)
		}
	}
	return nil
}

// Result summarizes one workload run.
type Result struct {
	Workload   string
	Ops        int64
	Errors     int64
	Duration   time.Duration
	Throughput float64 // ops per second
	LatencyP50 time.Duration
	LatencyP99 time.Duration
}

// Apply executes one operation against a store.
func Apply(store graph.Store, op Op) error {
	switch op.Kind {
	case OpAddEdge:
		return store.AddEdge(graph.Edge{Src: op.Src, Dst: op.Dst, Type: op.Type,
			Props: graph.Properties{{Name: "ts", Value: []byte{0, 0, 0, 0}}}})
	case OpNeighbors:
		return store.Neighbors(op.Src, op.Type, op.Limit, func(graph.VertexID, graph.Properties) bool { return true })
	case OpKHop:
		// Limit acts as the total neighborhood budget; per-vertex fan-out
		// stays bounded so deep probes touch a thin path, not the graph.
		_, err := graph.KHopBudget(store, op.Src, op.Type, op.Hops, 16, op.Limit)
		return err
	case OpBatchInsert:
		n := op.Batch
		if n <= 0 {
			n = 1
		}
		muts := make([]graph.Mutation, n)
		for i := 0; i < n; i++ {
			muts[i] = graph.AddEdgeMut(graph.Edge{
				Src: op.Src, Dst: op.Dst + graph.VertexID(i), Type: op.Type,
				Props: graph.Properties{{Name: "ts", Value: []byte{0, 0, 0, 0}}},
			})
		}
		// Dispatches through BatchStore.ApplyBatch when the store supports
		// it, so the whole batch rides one WAL commit group.
		return graph.ApplyMutations(store, muts)
	default:
		return fmt.Errorf("workload: unknown op kind %d", op.Kind)
	}
}

// Run drives the workload with `workers` concurrent clients, each issuing
// opsPerWorker operations, and reports aggregate throughput.
func Run(store graph.Store, gen Generator, workers, opsPerWorker int, seed int64) Result {
	var wg sync.WaitGroup
	var errs atomic.Int64
	var hist metrics.Histogram
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := gen.Clone(seed + int64(w))
			for i := 0; i < opsPerWorker; i++ {
				opStart := time.Now()
				if err := Apply(store, g.Next()); err != nil {
					errs.Add(1)
				}
				hist.Observe(time.Since(opStart))
			}
		}(w)
	}
	wg.Wait()
	d := time.Since(start)
	total := int64(workers) * int64(opsPerWorker)
	return Result{
		Workload:   gen.Name(),
		Ops:        total,
		Errors:     errs.Load(),
		Duration:   d,
		Throughput: float64(total) / d.Seconds(),
		LatencyP50: hist.Quantile(0.50),
		LatencyP99: hist.Quantile(0.99),
	}
}

// RunFor drives the workload for a fixed duration instead of a fixed op
// count, returning the measured throughput.
func RunFor(store graph.Store, gen Generator, workers int, d time.Duration, seed int64) Result {
	var wg sync.WaitGroup
	var ops, errs atomic.Int64
	var hist metrics.Histogram
	deadline := time.Now().Add(d)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := gen.Clone(seed + int64(w))
			for time.Now().Before(deadline) {
				opStart := time.Now()
				if err := Apply(store, g.Next()); err != nil {
					errs.Add(1)
				}
				hist.Observe(time.Since(opStart))
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	return Result{
		Workload:   gen.Name(),
		Ops:        ops.Load(),
		Errors:     errs.Load(),
		Duration:   elapsed,
		Throughput: float64(ops.Load()) / elapsed.Seconds(),
		LatencyP50: hist.Quantile(0.50),
		LatencyP99: hist.Quantile(0.99),
	}
}

// PreloadParallel populates store with a power-law graph using concurrent
// loaders — needed when the store simulates per-operation I/O latency, so
// load time reflects pipelined ingestion rather than serial round trips.
func PreloadParallel(store graph.Store, spec PreloadSpec, workers int) error {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	var firstErr atomic.Value
	per := spec.Edges / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(spec.Seed + int64(w)))
			zipf := newZipfSource(rng, spec.Vertices, spec.ZipfS)
			ts := make([]byte, 8)
			for i := 0; i < per; i++ {
				src := zipf.draw()
				dst := graph.VertexID(rng.Intn(spec.Vertices))
				if err := store.AddEdge(graph.Edge{
					Src: src, Dst: dst, Type: spec.Type,
					Props: graph.Properties{{Name: "ts", Value: ts}},
				}); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err, ok := firstErr.Load().(error); ok {
		return err
	}
	return nil
}
