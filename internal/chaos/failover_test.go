package chaos

import (
	"fmt"
	"testing"
	"time"
)

// TestFailoverChaos is the acceptance property of leader failover: across
// repeated depositions — the leader killed mid-group-commit by an injected
// crash, or fenced out while perfectly healthy — every acknowledged write
// survives onto the promoted leader, failed writes obey maybe-semantics,
// and not one write issued by a deposed zombie leader is acknowledged or
// becomes visible. Two seeds run in CI; each is fully reproducible.
func TestFailoverChaos(t *testing.T) {
	ops := 1500
	if testing.Short() {
		ops = 400
	}
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := RunFailover(FailoverConfig{
				Seed:           seed,
				Ops:            ops,
				Rounds:         3,
				ZombieWrites:   8,
				CommitWindow:   200 * time.Microsecond,
				CommitMaxBatch: 16,
				Logf:           t.Logf,
			})
			if err != nil {
				t.Fatalf("property violated: %v", err)
			}
			if rep.Acked == 0 {
				t.Fatal("no operation was ever acknowledged; the run is vacuous")
			}
			if rep.Failovers != 3 {
				t.Fatalf("performed %d failovers, want 3", rep.Failovers)
			}
			if rep.CrashKills == 0 || rep.LiveKills == 0 {
				t.Errorf("kill mix: %d crash, %d live; want both exercised", rep.CrashKills, rep.LiveKills)
			}
			if rep.ZombieFenced != rep.ZombieWrites {
				t.Errorf("zombie writes fenced %d/%d; every one must fail explicitly",
					rep.ZombieFenced, rep.ZombieWrites)
			}
			if rep.FencedAppends == 0 {
				t.Error("no append was ever rejected by the storage fence; zombies never reached it")
			}
			if rep.FinalEpoch != 3 {
				t.Errorf("final epoch %d, want 3 (one per failover)", rep.FinalEpoch)
			}
		})
	}
}
