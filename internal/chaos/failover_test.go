package chaos

import (
	"fmt"
	"testing"
	"time"
)

// TestFailoverChaos is the acceptance property of leader failover: across
// repeated depositions — the leader killed mid-group-commit by an injected
// crash, or fenced out while perfectly healthy — every acknowledged write
// survives onto the promoted leader, failed writes obey maybe-semantics,
// and not one write issued by a deposed zombie leader is acknowledged or
// becomes visible. Two seeds run in CI; each is fully reproducible.
func TestFailoverChaos(t *testing.T) {
	ops := 1500
	if testing.Short() {
		ops = 400
	}
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := RunFailover(FailoverConfig{
				Seed:           seed,
				Ops:            ops,
				Rounds:         3,
				ZombieWrites:   8,
				CommitWindow:   200 * time.Microsecond,
				CommitMaxBatch: 16,
				Logf:           t.Logf,
			})
			if err != nil {
				t.Fatalf("property violated: %v", err)
			}
			if rep.Acked == 0 {
				t.Fatal("no operation was ever acknowledged; the run is vacuous")
			}
			if rep.Failovers != 3 {
				t.Fatalf("performed %d failovers, want 3", rep.Failovers)
			}
			if rep.CrashKills == 0 || rep.LiveKills == 0 {
				t.Errorf("kill mix: %d crash, %d live; want both exercised", rep.CrashKills, rep.LiveKills)
			}
			if rep.ZombieFenced != rep.ZombieWrites {
				t.Errorf("zombie writes fenced %d/%d; every one must fail explicitly",
					rep.ZombieFenced, rep.ZombieWrites)
			}
			if rep.FencedAppends == 0 {
				t.Error("no append was ever rejected by the storage fence; zombies never reached it")
			}
			if rep.FinalEpoch != 3 {
				t.Errorf("final epoch %d, want 3 (one per failover)", rep.FinalEpoch)
			}
		})
	}
}

// TestFailoverChaosPipelined is the same property with the commit pipeline
// wide open: each leader keeps up to 4 group appends in flight over slow
// storage, and every live deposition fires a burst of concurrent writes so
// the fence claim lands with the pipeline full. Acked burst writes must
// survive the promotion, fenced in-flight groups must persist zero bytes
// (asserted inside RunFailover), and zombies stay locked out.
func TestFailoverChaosPipelined(t *testing.T) {
	ops := 900
	if testing.Short() {
		ops = 300
	}
	for _, seed := range []int64{3, 4} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := RunFailover(FailoverConfig{
				Seed:                seed,
				Ops:                 ops,
				Rounds:              3,
				ZombieWrites:        8,
				CommitWindow:        200 * time.Microsecond,
				CommitMaxBatch:      8,
				PipelineDepth:       4,
				InflightBurst:       16,
				StorageWriteLatency: 300 * time.Microsecond,
				Logf:                t.Logf,
			})
			if err != nil {
				t.Fatalf("property violated: %v", err)
			}
			if rep.Acked == 0 {
				t.Fatal("no operation was ever acknowledged; the run is vacuous")
			}
			if rep.Failovers != 3 {
				t.Fatalf("performed %d failovers, want 3", rep.Failovers)
			}
			if rep.BurstWrites == 0 {
				t.Fatal("no burst write ever raced a fence claim; the pipelined run is vacuous")
			}
			if rep.ZombieFenced != rep.ZombieWrites {
				t.Errorf("zombie writes fenced %d/%d; every one must fail explicitly",
					rep.ZombieFenced, rep.ZombieWrites)
			}
			if rep.FencedAppends == 0 {
				t.Error("no append was ever rejected by the storage fence; the pipeline never hit it")
			}
			// One epoch per failover, plus possibly one more per promotion
			// when recovery finds durable post-gap debris from the killed
			// pipeline and bumps the epoch to fence it out.
			if rep.FinalEpoch < 3 || rep.FinalEpoch > 6 {
				t.Errorf("final epoch %d, want 3..6 (one per failover + debris bumps)", rep.FinalEpoch)
			}
			t.Logf("burst: %d/%d acked across depositions", rep.BurstAcked, rep.BurstWrites)
		})
	}
}
