package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/metrics"
	"bg3/internal/replication"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// propName is the single edge property the workload writes and the oracle
// compares.
const propName = "v"

// Config parameterizes one harness run. The zero value is filled with
// small-but-meaningful defaults by Run.
type Config struct {
	// Seed drives the workload RNG (op mix, keys, crash spacing). The
	// fault plan has its own seed in Faults.Seed; together they make a run
	// reproducible.
	Seed int64

	// Ops is the number of workload operations (default 2000).
	Ops int

	// Owners, EdgeTypes and Dsts bound the key space: edges are drawn as
	// (owner, type, dst) over [1..Owners] x [1..EdgeTypes] x [1..Dsts].
	// Defaults 12, 3, 24.
	Owners, EdgeTypes, Dsts int

	// DeleteFrac is the fraction of ops that are deletes (default 0.2).
	DeleteFrac float64

	// BatchFrac is the fraction of ops issued as multi-mutation ApplyBatch
	// calls — each batch is one durability decision whose WAL records
	// share commit groups (default 0: single ops only). A failed batch
	// leaves every mutation in it uncertain, which is exactly the
	// whole-group-or-none contract the oracle then verifies against
	// recovery.
	BatchFrac float64

	// BatchMax bounds the mutations per batch (default 8).
	BatchMax int

	// CommitWindow / CommitMaxBatch pass through to the RW node's group
	// committer. A non-zero window lets a batch's records coalesce into
	// real multi-record group envelopes, so injected torn appends land in
	// the middle of a group flush.
	CommitWindow   time.Duration
	CommitMaxBatch int

	// CheckpointEvery / SnapshotEvery run a manual checkpoint / full
	// snapshot (plus WAL trim) every N ops (defaults 40 and 350; 0
	// disables). GCEvery runs a synchronous reclamation cycle (default 0).
	CheckpointEvery, SnapshotEvery, GCEvery int

	// CrashAppends is the mean number of storage appends between injected
	// crash points (0: no crashes). Each gap is drawn uniformly from
	// [CrashAppends/2, 3*CrashAppends/2).
	CrashAppends int64

	// ExtentSize is the store's extent capacity (default 8 KiB — small, so
	// runs seal many extents and exercise the tail-of-extent paths).
	ExtentSize int

	// Faults configures the injected storage misbehaviour. SealLossProb
	// must be 0 here: the harness runs a single-copy store, so losing an
	// extent that holds acknowledged data is genuine data loss, which the
	// recovery path correctly refuses to paper over. Extent-loss handling
	// is exercised by the follower-resync tests instead.
	Faults storage.FaultConfig

	// Logf, when non-nil, receives progress lines (tests pass t.Logf).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 2000
	}
	if c.Owners <= 0 {
		c.Owners = 12
	}
	if c.EdgeTypes <= 0 {
		c.EdgeTypes = 3
	}
	if c.Dsts <= 0 {
		c.Dsts = 24
	}
	if c.DeleteFrac == 0 {
		c.DeleteFrac = 0.2
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 8
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 40
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 350
	}
	if c.ExtentSize <= 0 {
		c.ExtentSize = 8 << 10
	}
	return c
}

// Report summarizes a run for assertions and logging.
type Report struct {
	Ops    int // workload operations issued
	Acked  int // operations acknowledged (must survive recovery)
	Failed int // operations that returned an error (may or may not survive)

	BatchOps       int // ApplyBatch calls issued
	BatchMutations int // mutations carried inside those batches

	Crashes    int // node deaths (injected crash points + fail-stopped writers)
	Recoveries int // successful RecoverRWNode reopens

	CertainKeys   int // oracle keys with exact expected state
	UncertainKeys int // oracle keys carrying failed-op residue

	Faults storage.FaultStats // what the plan actually injected
}

// Run executes one crash-recovery chaos run and returns its report. Any
// returned error is a property violation (lost acknowledged write, phantom
// state, failed recovery) — a nil error means every crash was survived
// with the durability contract intact.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Faults.SealLossProb != 0 {
		return nil, fmt.Errorf("chaos: SealLossProb is not survivable on a single-copy store")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &Report{}
	oracle := NewOracle()

	plan := storage.NewFaultPlan(cfg.Faults)
	plan.OnInject = func(storage.FaultKind) { metrics.Faults.FaultsInjected.Inc() }
	plan.SetEnabled(false) // quiet while the node bootstraps
	st := storage.Open(&storage.Options{
		ExtentSize: cfg.ExtentSize,
		// Keep reclaimed extents readable for the whole run: snapshots may
		// reference pre-relocation locations until the next snapshot.
		ReclaimGrace: time.Hour,
		Faults:       plan,
	})
	defer st.Close()

	rwOpts := replication.RWOptions{
		Engine: core.Options{
			Tree: bwtree.Config{
				Policy:         bwtree.ReadOptimized,
				MaxPageEntries: 24, // small pages: splits happen early
			},
			// Forest migrations stay off: everything lives in INIT, which
			// still exercises page splits, flushes, and replay.
		},
		// The harness is single-threaded, so every op (single or batch)
		// waits for its own durability decision and acked-vs-failed
		// attribution in the oracle stays exact regardless of the window; a
		// non-zero window just makes commit groups genuinely multi-record.
		CommitWindow: cfg.CommitWindow,
		MaxBatch:     cfg.CommitMaxBatch,
	}

	rw, err := replication.NewRWNode(st, rwOpts)
	if err != nil {
		return rep, fmt.Errorf("chaos: bootstrap: %w", err)
	}
	stopped := false
	defer func() {
		if !stopped {
			rw.Stop()
		}
	}()
	// RecoverRWNode needs a snapshot to exist; write the empty baseline.
	if _, err := rw.WriteSnapshot(); err != nil {
		return rep, fmt.Errorf("chaos: baseline snapshot: %w", err)
	}

	crashGap := func() int64 {
		return cfg.CrashAppends/2 + rng.Int63n(cfg.CrashAppends+1)
	}
	plan.SetEnabled(true)
	if cfg.CrashAppends > 0 {
		plan.ScheduleCrash(crashGap())
	}

	drawKey := func() EdgeKey {
		return EdgeKey{
			Src: graph.VertexID(1 + rng.Intn(cfg.Owners)),
			Typ: graph.EdgeType(1 + rng.Intn(cfg.EdgeTypes)),
			Dst: graph.VertexID(1 + rng.Intn(cfg.Dsts)),
		}
	}
	for i := 0; i < cfg.Ops; i++ {
		k := drawKey()
		rep.Ops++
		if cfg.BatchFrac > 0 && rng.Float64() < cfg.BatchFrac {
			// One ApplyBatch: n mutations, one durability decision, WAL
			// records committed in shared groups. Every few batches the next
			// storage append is force-torn, so the batch's group flush dies
			// mid-write and recovery must keep the whole envelope or none of
			// it — which the oracle checks as all-mutations-uncertain.
			type batchOp struct {
				k   EdgeKey
				del bool
				val string
			}
			n := 2 + rng.Intn(cfg.BatchMax-1)
			muts := make([]graph.Mutation, 0, n)
			ops := make([]batchOp, 0, n)
			for j := 0; j < n; j++ {
				bk := drawKey()
				if rng.Float64() < cfg.DeleteFrac {
					muts = append(muts, graph.DeleteEdgeMut(bk.Src, bk.Typ, bk.Dst))
					ops = append(ops, batchOp{k: bk, del: true})
				} else {
					val := fmt.Sprintf("s%d.%d.%d", cfg.Seed, i, j)
					muts = append(muts, graph.AddEdgeMut(graph.Edge{
						Src: bk.Src, Dst: bk.Dst, Type: bk.Typ,
						Props: graph.Properties{{Name: propName, Value: []byte(val)}},
					}))
					ops = append(ops, batchOp{k: bk, val: val})
				}
			}
			rep.BatchOps++
			rep.BatchMutations += n
			if cfg.Faults.TornWriteProb > 0 && rep.BatchOps%4 == 1 {
				// Force a tear under the upcoming flush so torn group
				// envelopes are exercised deterministically — only when this
				// run injects faults at all (quiet runs must stay quiet).
				plan.TearNext()
			}
			if err := rw.ApplyBatch(muts); err != nil {
				rep.Failed++
				logf("chaos: batch %d (op %d, %d mutations) failed: %v", rep.BatchOps, i, n, err)
				// Whole-group-or-none: any prefix of the batch may have
				// become durable, so every mutation is individually
				// uncertain until a later acknowledged op overwrites it.
				for _, op := range ops {
					if op.del {
						oracle.FailDelete(op.k)
					} else {
						oracle.FailPut(op.k, op.val)
					}
				}
			} else {
				rep.Acked++
				for _, op := range ops {
					if op.del {
						oracle.CommitDelete(op.k)
					} else {
						oracle.CommitPut(op.k, op.val)
					}
				}
			}
		} else if rng.Float64() < cfg.DeleteFrac {
			if err := rw.DeleteEdge(k.Src, k.Typ, k.Dst); err != nil {
				rep.Failed++
				oracle.FailDelete(k)
			} else {
				rep.Acked++
				oracle.CommitDelete(k)
			}
		} else {
			val := fmt.Sprintf("s%d.%d", cfg.Seed, i)
			e := graph.Edge{Src: k.Src, Dst: k.Dst, Type: k.Typ,
				Props: graph.Properties{{Name: propName, Value: []byte(val)}}}
			if err := rw.AddEdge(e); err != nil {
				rep.Failed++
				oracle.FailPut(k, val)
			} else {
				rep.Acked++
				oracle.CommitPut(k, val)
			}
		}
		if i == 10 {
			// Guarantee at least one torn tail-write per run, independent
			// of the probabilistic draws.
			plan.TearNext()
		}
		if i%7 == 3 {
			// Exercise the read path under injected read faults; results
			// are unverifiable mid-fault, so only hard state is asserted
			// after recovery.
			_, _, _ = rw.GetEdge(k.Src, k.Typ, k.Dst)
		}
		if cfg.CheckpointEvery > 0 && i%cfg.CheckpointEvery == cfg.CheckpointEvery-1 {
			_ = rw.Checkpoint() // a failed checkpoint just defers the flush
		}
		if cfg.SnapshotEvery > 0 && i%cfg.SnapshotEvery == cfg.SnapshotEvery-1 {
			// A failed snapshot never publishes its footer, so the previous
			// one stays authoritative; trimming is bounded by the last
			// published footer either way.
			if _, err := rw.WriteSnapshot(); err == nil {
				rw.TrimWAL()
			}
		}
		if cfg.GCEvery > 0 && i%cfg.GCEvery == cfg.GCEvery-1 {
			_, _ = rw.Engine().RunGC(1)
		}

		if plan.Crashed() || writerDead(rw) {
			rep.Crashes++
			logf("chaos: crash %d at op %d (acked %d, failed %d)", rep.Crashes, i, rep.Acked, rep.Failed)
			rw.Stop()
			stopped = true
			// The node is gone; shared storage survives. Recovery runs in
			// a quiet window (a real reopen races no injected workload).
			plan.ClearCrash()
			plan.SetEnabled(false)
			rw, err = replication.RecoverRWNode(st, rwOpts)
			if err != nil {
				return rep, fmt.Errorf("chaos: recovery after crash %d: %w", rep.Crashes, err)
			}
			stopped = false
			rep.Recoveries++
			metrics.Faults.Recoveries.Inc()
			if err := oracle.Verify(rw.Engine()); err != nil {
				return rep, fmt.Errorf("chaos: after crash %d: %w", rep.Crashes, err)
			}
			plan.SetEnabled(true)
			if cfg.CrashAppends > 0 {
				plan.ScheduleCrash(crashGap())
			}
		}
	}

	// Final pass: quiesce faults, restart once more (a clean shutdown is
	// still a crash from storage's point of view — the WAL suffix beyond
	// the last snapshot must replay), and verify leader and a follower.
	plan.ClearCrash()
	plan.SetEnabled(false)
	rep.CertainKeys = oracle.Certain()
	rep.UncertainKeys = oracle.Uncertain()
	if err := oracle.Verify(rw.Engine()); err != nil {
		return rep, fmt.Errorf("chaos: final live verify: %w", err)
	}
	rw.Stop()
	stopped = true
	rw, err = replication.RecoverRWNode(st, rwOpts)
	if err != nil {
		return rep, fmt.Errorf("chaos: final recovery: %w", err)
	}
	stopped = false
	rep.Recoveries++
	metrics.Faults.Recoveries.Inc()
	if err := oracle.Verify(rw.Engine()); err != nil {
		return rep, fmt.Errorf("chaos: final recovered verify: %w", err)
	}

	// A follower bootstrapped from the recovery snapshot must agree.
	ro, err := replication.NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		return rep, fmt.Errorf("chaos: follower bootstrap: %w", err)
	}
	if err := ro.Poll(); err != nil {
		ro.Stop()
		return rep, fmt.Errorf("chaos: follower poll: %w", err)
	}
	verr := oracle.Verify(ro.Replica())
	ro.Stop()
	if verr != nil {
		return rep, fmt.Errorf("chaos: follower verify: %w", verr)
	}

	rep.Faults = plan.Stats()
	logf("chaos: done: %d ops (%d acked, %d failed), %d crashes, %d recoveries, faults %+v",
		rep.Ops, rep.Acked, rep.Failed, rep.Crashes, rep.Recoveries, rep.Faults)
	return rep, nil
}

// writerDead reports whether the node's WAL writer has fail-stopped
// (retries exhausted without an injected crash). The fail-stop is what
// keeps the LSN sequence gapless, so the harness treats it exactly like a
// crash: stop the node, recover from shared storage.
func writerDead(rw *replication.RWNode) bool {
	err := rw.Writer().Err()
	return err != nil && errors.Is(err, wal.ErrWriterFailed)
}
