package chaos

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/replication"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// The snapshot-isolation chaos suite: multi-hop traversals pinned to an
// MVCC read epoch run concurrently with ApplyBatch storms through a
// depth-8 pipelined group committer and a live GC reclaimer. The oracle is
// exact: every traversal's observation must equal the state produced by
// replaying the WAL prefix up to the traversal's pinned epoch — and that
// epoch must be the last LSN of some sealed commit group (or 0, the empty
// prefix). Anything else is a torn read.

const snapProp = "v"

// snapObservation is one pinned traversal's complete view: the pinned
// epoch plus, for every source vertex visited, its adjacency list with the
// version each edge carried.
type snapObservation struct {
	epoch wal.LSN
	adj   map[graph.VertexID]map[graph.VertexID]string // src -> dst -> version
}

// traverseAt performs the 2-hop traversal through a pinned view: hub ->
// writers -> per-writer edge fan, recording every edge's version.
func traverseAt(v *core.ReadView, hub graph.VertexID) (snapObservation, error) {
	obs := snapObservation{
		epoch: wal.LSN(v.Epoch()),
		adj:   make(map[graph.VertexID]map[graph.VertexID]string),
	}
	record := func(src graph.VertexID) error {
		m := make(map[graph.VertexID]string)
		err := v.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, props graph.Properties) bool {
			val, _ := props.Get(snapProp)
			m[dst] = string(val)
			return true
		})
		obs.adj[src] = m
		return err
	}
	if err := record(hub); err != nil {
		return obs, err
	}
	for src := range obs.adj[hub] {
		if err := record(src); err != nil {
			return obs, err
		}
	}
	return obs, nil
}

// replayModel applies WAL put/delete records to an edge->version model.
// The workload keeps every owner in the INIT tree (SplitThreshold 0), so
// every data record's key is owner[8] | etype[2] | dst[8].
func replayApply(model map[EdgeKey]string, rec *wal.Record) error {
	switch rec.Type {
	case wal.RecordPut, wal.RecordDelete:
	default:
		return nil
	}
	if len(rec.Key) != 18 {
		return fmt.Errorf("unexpected key length %d (vertex record or migration in a SplitThreshold=0 run?)", len(rec.Key))
	}
	owner := beUint64(rec.Key[:8])
	et, dst, err := graph.DecodeEdgeKey(rec.Key[8:])
	if err != nil {
		return err
	}
	k := EdgeKey{Src: graph.VertexID(owner), Typ: et, Dst: dst}
	if rec.Type == wal.RecordDelete {
		delete(model, k)
		return nil
	}
	props, err := graph.DecodeProps(rec.Value)
	if err != nil {
		return err
	}
	val, _ := props.Get(snapProp)
	model[k] = string(val)
	return nil
}

func beUint64(b []byte) uint64 {
	var v uint64
	for _, x := range b {
		v = v<<8 | uint64(x)
	}
	return v
}

// checkObservation verifies one traversal against the model at its epoch:
// for every source it visited, the observed adjacency list must match the
// model's exactly — same destinations, same versions.
func checkObservation(obs snapObservation, model map[EdgeKey]string) error {
	for src, seen := range obs.adj {
		want := make(map[graph.VertexID]string)
		for k, v := range model {
			if k.Src == src && k.Typ == graph.ETypeFollow {
				want[k.Dst] = v
			}
		}
		if len(seen) != len(want) {
			return fmt.Errorf("epoch %d src %d: observed %d edges, WAL prefix has %d", obs.epoch, src, len(seen), len(want))
		}
		for dst, got := range seen {
			if wv, ok := want[dst]; !ok || wv != got {
				return fmt.Errorf("epoch %d edge %d->%d: observed %q, WAL prefix has %q (present=%v)", obs.epoch, src, dst, got, wv, ok)
			}
		}
	}
	return nil
}

// TestSnapshotTraversalMatchesGroupBoundary is the acceptance oracle of
// the MVCC read epochs (ISSUE 7): under a depth-8 pipelined committer,
// concurrent ApplyBatch storms, page flushes, and GC reclamation, every
// pinned 2-hop traversal observes exactly the graph produced by some WAL
// prefix ending at a group-commit boundary — never a partial group, never
// a mix of two boundaries.
func TestSnapshotTraversalMatchesGroupBoundary(t *testing.T) {
	const (
		hub      = graph.VertexID(1000)
		writers  = 8
		rounds   = 40
		edgesPer = 6
		readers  = 4
	)
	st := storage.Open(&storage.Options{ExtentSize: 8 << 10, ReclaimGrace: time.Hour})
	defer st.Close()
	rw, err := replication.NewRWNode(st, replication.RWOptions{
		Engine: core.Options{
			Tree: bwtree.Config{
				Policy:         bwtree.ReadOptimized,
				MaxPageEntries: 16,
				ConsolidateNum: 4,
			},
			// Keep every owner in the INIT tree so the WAL replay oracle
			// can decode keys without tracking migrations.
			SplitThreshold: 0,
		},
		CommitWindow:  100 * time.Microsecond,
		MaxBatch:      16,
		PipelineDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	// Seed the hub's first hop: one edge to each writer's source vertex.
	seed := make([]graph.Mutation, 0, writers)
	for w := 0; w < writers; w++ {
		seed = append(seed, graph.AddEdgeMut(graph.Edge{
			Src: hub, Dst: graph.VertexID(w + 1), Type: graph.ETypeFollow,
			Props: graph.Properties{{Name: snapProp, Value: []byte("seed")}},
		}))
	}
	if err := rw.ApplyBatch(seed); err != nil {
		t.Fatal(err)
	}

	var (
		stop     = make(chan struct{})
		writerWG sync.WaitGroup
		auxWG    sync.WaitGroup
		obsMu    sync.Mutex
		obsList  []snapObservation
		firstErr error
	)
	fail := func(err error) {
		obsMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		obsMu.Unlock()
	}

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			src := graph.VertexID(w + 1)
			for n := 0; n < rounds; n++ {
				ver := []byte(strconv.Itoa(n))
				muts := make([]graph.Mutation, 0, edgesPer)
				for d := 0; d < edgesPer; d++ {
					muts = append(muts, graph.AddEdgeMut(graph.Edge{
						Src: src, Dst: graph.VertexID(5000 + d), Type: graph.ETypeFollow,
						Props: graph.Properties{{Name: snapProp, Value: ver}},
					}))
				}
				if err := rw.ApplyBatch(muts); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

	// Flush + GC churn: consolidations move history to new bases and the
	// reclaimer relocates extents while traversals hold pins.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = rw.Checkpoint()
			if _, err := rw.Engine().RunGC(2); err != nil {
				fail(err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for r := 0; r < readers; r++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			var lastEpoch wal.LSN
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := rw.Engine().View()
				obs, err := traverseAt(v, hub)
				v.Close()
				if err != nil {
					fail(err)
					return
				}
				if obs.epoch < lastEpoch {
					fail(fmt.Errorf("read epoch went backwards: %d after %d", obs.epoch, lastEpoch))
					return
				}
				lastEpoch = obs.epoch
				obsMu.Lock()
				obsList = append(obsList, obs)
				obsMu.Unlock()
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	auxWG.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Build the exact oracle: replay the WAL group by group, snapshotting
	// the model at every group boundary.
	reader := wal.NewReader(st)
	boundaries := map[wal.LSN]map[EdgeKey]string{0: {}}
	model := make(map[EdgeKey]string)
	groups := 0
	for {
		gs, err := reader.PollGroups()
		if err != nil {
			t.Fatal(err)
		}
		if len(gs) == 0 {
			break
		}
		for _, g := range gs {
			for _, rec := range g {
				if err := replayApply(model, rec); err != nil {
					t.Fatalf("replay LSN %d: %v", rec.LSN, err)
				}
			}
			snap := make(map[EdgeKey]string, len(model))
			for k, v := range model {
				snap[k] = v
			}
			boundaries[g[len(g)-1].LSN] = snap
			groups++
		}
	}
	if groups < writers*rounds*edgesPer/16 {
		t.Fatalf("suspiciously few commit groups: %d", groups)
	}

	checked := 0
	for _, obs := range obsList {
		m, ok := boundaries[obs.epoch]
		if !ok {
			t.Fatalf("pinned epoch %d is not a group-commit boundary (%d boundaries)", obs.epoch, len(boundaries))
		}
		if err := checkObservation(obs, m); err != nil {
			t.Fatalf("torn traversal: %v", err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no traversal completed; the oracle is vacuous")
	}
	t.Logf("verified %d pinned traversals against %d group boundaries (gc stats: %+v)",
		checked, groups, rw.Engine().GCStats())
}

// TestStressSnapshotReadersUnderWriteStorm is the -race MVCC stress leg:
// 32 writers hammer ApplyBatch while pinned readers traverse and a GC/
// flush loop churns pages underneath. Readers assert the snapshot
// contract that survives without the full WAL oracle: epochs never move
// backwards across successive pins, and each writer's observed version
// never decreases (visibility is a WAL prefix, so time cannot run
// backwards for any key).
func TestStressSnapshotReadersUnderWriteStorm(t *testing.T) {
	const (
		writers  = 32
		rounds   = 60
		edgesPer = 4
		readers  = 4
	)
	st := storage.Open(&storage.Options{ExtentSize: 16 << 10, ReclaimGrace: time.Hour})
	defer st.Close()
	rw, err := replication.NewRWNode(st, replication.RWOptions{
		Engine: core.Options{
			Tree: bwtree.Config{
				Policy:         bwtree.ReadOptimized,
				MaxPageEntries: 16,
				ConsolidateNum: 4,
			},
			SplitThreshold: 0,
		},
		CommitWindow:  50 * time.Microsecond,
		MaxBatch:      32,
		PipelineDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	var (
		stop     = make(chan struct{})
		writerWG sync.WaitGroup
		auxWG    sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			src := graph.VertexID(w + 1)
			for n := 0; n < rounds; n++ {
				ver := []byte(strconv.Itoa(n))
				muts := make([]graph.Mutation, 0, edgesPer)
				for d := 0; d < edgesPer; d++ {
					muts = append(muts, graph.AddEdgeMut(graph.Edge{
						Src: src, Dst: graph.VertexID(7000 + d), Type: graph.ETypeFollow,
						Props: graph.Properties{{Name: snapProp, Value: ver}},
					}))
				}
				if err := rw.ApplyBatch(muts); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = rw.Checkpoint()
			_, _ = rw.Engine().RunGC(2)
		}
	}()

	for r := 0; r < readers; r++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			lastVer := make(map[graph.VertexID]int)
			var lastEpoch wal.LSN
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := rw.Engine().View()
				if e := wal.LSN(v.Epoch()); e < lastEpoch {
					fail(fmt.Errorf("epoch went backwards: %d after %d", e, lastEpoch))
					v.Close()
					return
				} else {
					lastEpoch = e
				}
				for w := 0; w < writers; w++ {
					src := graph.VertexID(w + 1)
					maxSeen := -1
					err := v.Neighbors(src, graph.ETypeFollow, 0, func(_ graph.VertexID, props graph.Properties) bool {
						if raw, ok := props.Get(snapProp); ok {
							if n, err := strconv.Atoi(string(raw)); err == nil && n > maxSeen {
								maxSeen = n
							}
						}
						return true
					})
					if err != nil {
						fail(err)
						v.Close()
						return
					}
					if prev, seen := lastVer[src]; seen && maxSeen < prev {
						fail(fmt.Errorf("writer %d ran backwards: version %d after %d (epoch %d)",
							w, maxSeen, prev, lastEpoch))
						v.Close()
						return
					}
					if maxSeen >= 0 {
						lastVer[src] = maxSeen
					}
				}
				v.Close()
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	auxWG.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Quiesced: a fresh pin must see every writer's final round.
	v := rw.Engine().View()
	defer v.Close()
	for w := 0; w < writers; w++ {
		n, err := v.Degree(graph.VertexID(w+1), graph.ETypeFollow)
		if err != nil {
			t.Fatal(err)
		}
		if n != edgesPer {
			t.Fatalf("writer %d: final degree %d, want %d", w, n, edgesPer)
		}
	}
	s := rw.Engine().Epochs().Stats()
	if s.Pinned != 1 {
		t.Fatalf("pin accounting leaked: %d live pins, want 1", s.Pinned)
	}
	if s.PinsTotal < int64(readers) {
		t.Fatalf("pins_total %d implausibly low", s.PinsTotal)
	}
}
