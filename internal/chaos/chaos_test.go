package chaos

import (
	"fmt"
	"testing"
	"time"

	"bg3/internal/storage"
)

// TestCrashRecoveryProperty is the acceptance property of the fault layer:
// under a seeded plan with >=10% transient append failures, probabilistic
// torn tail-writes (plus one forced torn write), latency spikes, read
// faults and repeated crash points, no acknowledged write is ever lost
// across recovery, and no impossible state appears. Three seeds run in CI;
// each is fully reproducible from its (workload, fault) seed pair.
func TestCrashRecoveryProperty(t *testing.T) {
	ops := 2500
	if testing.Short() {
		ops = 600
	}
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := Run(Config{
				Seed:         seed,
				Ops:          ops,
				CrashAppends: 500,
				Faults: storage.FaultConfig{
					Seed:           seed * 7717,
					AppendFailProb: 0.10,
					TornWriteProb:  0.03,
					ReadFailProb:   0.02,
					SpikeProb:      0.01,
					SpikeLatency:   20 * time.Microsecond,
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatalf("property violated: %v", err)
			}
			if rep.Acked == 0 {
				t.Fatal("no operation was ever acknowledged; the workload is vacuous")
			}
			if rep.Crashes == 0 {
				t.Error("no crash point fired; crash spacing too wide for the run")
			}
			if rep.Recoveries < rep.Crashes+1 {
				t.Errorf("recoveries %d < crashes %d + final restart", rep.Recoveries, rep.Crashes)
			}
			if rep.Faults.TransientAppends == 0 {
				t.Error("no transient append failures injected at 10% probability")
			}
			if rep.Faults.TornWrites == 0 {
				t.Error("no torn write injected despite TearNext")
			}
		})
	}
}

// TestCrashRecoveryWithGroupCommitBatches layers batched mutations and a
// real group-commit window onto the faulty workload: ApplyBatch calls whose
// WAL records coalesce into multi-record group envelopes, with forced torn
// appends landing mid-flush and crash points striking between them. The
// property: a crash during a group flush leaves either the whole envelope
// durable or none of it — a failed batch's mutations are all individually
// uncertain, an acked batch's mutations must all survive recovery, and no
// state outside the oracle's reachable set ever appears.
func TestCrashRecoveryWithGroupCommitBatches(t *testing.T) {
	ops := 2000
	if testing.Short() {
		ops = 500
	}
	for _, seed := range []int64{11, 12} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep, err := Run(Config{
				Seed:           seed,
				Ops:            ops,
				BatchFrac:      0.35,
				BatchMax:       10,
				CommitWindow:   200 * time.Microsecond,
				CommitMaxBatch: 16,
				CrashAppends:   400,
				Faults: storage.FaultConfig{
					Seed:           seed * 5557,
					AppendFailProb: 0.08,
					TornWriteProb:  0.04,
				},
				Logf: t.Logf,
			})
			if err != nil {
				t.Fatalf("property violated: %v", err)
			}
			if rep.BatchOps == 0 {
				t.Fatal("no batches issued; the run is vacuous")
			}
			if rep.BatchMutations < 2*rep.BatchOps {
				t.Errorf("batches carried %d mutations over %d calls; expected >= 2 each",
					rep.BatchMutations, rep.BatchOps)
			}
			if rep.Crashes == 0 {
				t.Error("no crash point fired; crash spacing too wide for the run")
			}
			if rep.Faults.TornWrites == 0 {
				t.Error("no torn write injected despite forced tears before batches")
			}
		})
	}
}

// TestChaosQuietBatches pins the batched path itself: with faults disabled
// every batch must ack and the oracle must match exactly — if this fails,
// the faulty batch runs prove nothing.
func TestChaosQuietBatches(t *testing.T) {
	rep, err := Run(Config{
		Seed:           21,
		Ops:            600,
		BatchFrac:      0.4,
		CommitWindow:   100 * time.Microsecond,
		CommitMaxBatch: 16,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatalf("quiet batch run failed: %v", err)
	}
	if rep.Failed != 0 {
		t.Errorf("quiet batch run had %d failed ops", rep.Failed)
	}
	if rep.UncertainKeys != 0 {
		t.Errorf("quiet batch run left %d uncertain keys", rep.UncertainKeys)
	}
	if rep.BatchOps == 0 {
		t.Fatal("no batches issued")
	}
}

// TestChaosQuiet runs the harness with every fault disabled: a pure
// crash-free workload where every op must ack and the oracle must match
// exactly. This pins the harness itself — if the quiet run fails, the
// fault runs prove nothing.
func TestChaosQuiet(t *testing.T) {
	rep, err := Run(Config{Seed: 42, Ops: 800, Logf: t.Logf})
	if err != nil {
		t.Fatalf("quiet run failed: %v", err)
	}
	if rep.Failed != 0 {
		t.Errorf("quiet run had %d failed ops", rep.Failed)
	}
	if rep.UncertainKeys != 0 {
		t.Errorf("quiet run left %d uncertain keys", rep.UncertainKeys)
	}
	if rep.Crashes != 0 {
		t.Errorf("quiet run crashed %d times", rep.Crashes)
	}
}

// TestChaosGC layers synchronous GC cycles into the faulty workload: page
// relocation concurrent with crash-recovery must not invalidate the
// durability property (ReclaimGrace keeps superseded locations readable).
func TestChaosGC(t *testing.T) {
	if testing.Short() {
		t.Skip("gc chaos run skipped in short mode")
	}
	rep, err := Run(Config{
		Seed:         9,
		Ops:          1500,
		GCEvery:      120,
		CrashAppends: 700,
		Faults: storage.FaultConfig{
			Seed:           61,
			AppendFailProb: 0.08,
			TornWriteProb:  0.02,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("gc chaos run failed: %v", err)
	}
	if rep.Acked == 0 {
		t.Fatal("no acknowledged ops")
	}
}

// TestRunRejectsExtentLoss documents why the single-copy harness refuses
// SealLossProb: losing an extent holding acked data is unrecoverable
// without replication, and the harness must not mask that as a pass.
func TestRunRejectsExtentLoss(t *testing.T) {
	_, err := Run(Config{Seed: 1, Ops: 10, Faults: storage.FaultConfig{SealLossProb: 0.5}})
	if err == nil {
		t.Fatal("expected SealLossProb to be rejected")
	}
}

func TestOracleSemantics(t *testing.T) {
	k := EdgeKey{Src: 1, Typ: 2, Dst: 3}

	t.Run("acked write must survive", func(t *testing.T) {
		o := NewOracle()
		o.CommitPut(k, "a")
		if err := o.Check(k, "a", true); err != nil {
			t.Fatal(err)
		}
		if err := o.Check(k, "", false); err == nil {
			t.Fatal("lost acked write not detected")
		}
		if err := o.Check(k, "b", true); err == nil {
			t.Fatal("wrong value not detected")
		}
	})

	t.Run("failed put may land or not", func(t *testing.T) {
		o := NewOracle()
		o.CommitPut(k, "a")
		o.FailPut(k, "b")
		for _, c := range []struct {
			got   string
			found bool
			ok    bool
		}{
			{"a", true, true},  // failed op never landed
			{"b", true, true},  // failed op landed via snapshot
			{"", false, false}, // acked value cannot vanish
			{"c", true, false}, // value from nowhere
		} {
			err := o.Check(k, c.got, c.found)
			if (err == nil) != c.ok {
				t.Errorf("Check(%q, %v) = %v, want ok=%v", c.got, c.found, err, c.ok)
			}
		}
	})

	t.Run("failed delete allows absence", func(t *testing.T) {
		o := NewOracle()
		o.CommitPut(k, "a")
		o.FailDelete(k)
		if err := o.Check(k, "", false); err != nil {
			t.Fatal(err)
		}
		if err := o.Check(k, "a", true); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ack after failure restores certainty", func(t *testing.T) {
		o := NewOracle()
		o.FailPut(k, "b")
		o.CommitPut(k, "c")
		if err := o.Check(k, "b", true); err == nil {
			t.Fatal("stale failed candidate accepted after later ack")
		}
		if err := o.Check(k, "c", true); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("phantom on untouched key", func(t *testing.T) {
		o := NewOracle()
		o.FailPut(k, "b")
		o.CommitDelete(k)
		if err := o.Check(k, "b", true); err == nil {
			t.Fatal("acked delete must clear failed candidates")
		}
	})
}
