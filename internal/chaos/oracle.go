// Package chaos is BG3's crash-recovery test harness: it drives randomized
// graph workloads against a store with a seeded fault plan (transient
// append failures, torn tail-of-extent writes, crash points), "crashes"
// the RW node at the injected points, reopens it from the latest snapshot
// plus the WAL suffix, and verifies the recovered graph against an
// in-memory oracle. The property it checks is the paper's durability
// contract: an acknowledged write is never lost, no matter where in the
// write pipeline the node died.
package chaos

import (
	"fmt"
	"sort"

	"bg3/internal/graph"
)

// EdgeKey identifies one edge in the oracle's model.
type EdgeKey struct {
	Src graph.VertexID
	Typ graph.EdgeType
	Dst graph.VertexID
}

func (k EdgeKey) String() string {
	return fmt.Sprintf("%d-[%d]->%d", k.Src, k.Typ, k.Dst)
}

// maybeState records the uncertainty a failed operation leaves behind. A
// write that was never acknowledged is allowed to be present after
// recovery (the engine applies memory state before the WAL wait resolves,
// and a later snapshot can make that state durable) or absent (its WAL
// record never became durable and no snapshot captured it).
type maybeState struct {
	values map[string]struct{} // values a failed put may have left behind
	absent bool                // a failed delete may have removed the key
}

// Oracle is the model the recovered graph is checked against: the last
// acknowledged value per edge (certain), plus the residue of failed
// operations (uncertain until the next acknowledged op overwrites them).
type Oracle struct {
	committed map[EdgeKey]string
	maybe     map[EdgeKey]*maybeState
}

// NewOracle returns an empty model.
func NewOracle() *Oracle {
	return &Oracle{
		committed: make(map[EdgeKey]string),
		maybe:     make(map[EdgeKey]*maybeState),
	}
}

// CommitPut records an acknowledged put: the key's state is again certain,
// because the acknowledged record's LSN orders it after every earlier
// failed attempt in both replay and memory.
func (o *Oracle) CommitPut(k EdgeKey, v string) {
	o.committed[k] = v
	delete(o.maybe, k)
}

// CommitDelete records an acknowledged delete.
func (o *Oracle) CommitDelete(k EdgeKey) {
	delete(o.committed, k)
	delete(o.maybe, k)
}

func (o *Oracle) maybeFor(k EdgeKey) *maybeState {
	ms := o.maybe[k]
	if ms == nil {
		ms = &maybeState{values: make(map[string]struct{})}
		o.maybe[k] = ms
	}
	return ms
}

// FailPut records an unacknowledged put: v joins the set of values the key
// may hold after recovery.
func (o *Oracle) FailPut(k EdgeKey, v string) {
	o.maybeFor(k).values[v] = struct{}{}
}

// FailDelete records an unacknowledged delete: the key may be absent after
// recovery even if an earlier acknowledged put exists.
func (o *Oracle) FailDelete(k EdgeKey) {
	o.maybeFor(k).absent = true
}

// Keys returns every key the oracle knows about, in deterministic order.
func (o *Oracle) Keys() []EdgeKey {
	keys := make([]EdgeKey, 0, len(o.committed)+len(o.maybe))
	seen := make(map[EdgeKey]struct{}, len(o.committed))
	for k := range o.committed {
		keys = append(keys, k)
		seen[k] = struct{}{}
	}
	for k := range o.maybe {
		if _, dup := seen[k]; !dup {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		if a.Typ != b.Typ {
			return a.Typ < b.Typ
		}
		return a.Dst < b.Dst
	})
	return keys
}

// Certain reports how many keys have no failed-operation residue.
func (o *Oracle) Certain() int { return len(o.committed) - o.overlap() }

// Uncertain reports how many keys carry failed-operation residue.
func (o *Oracle) Uncertain() int { return len(o.maybe) }

func (o *Oracle) overlap() int {
	n := 0
	for k := range o.maybe {
		if _, ok := o.committed[k]; ok {
			n++
		}
	}
	return n
}

// Check validates one observed read against the model. got/found are the
// observed value and presence. The rule: with no failed-op residue the
// observation must match the acknowledged state exactly (this is the
// zero-data-loss property — an acked write must survive recovery); with
// residue, any state reachable by some subset of the failed ops is legal.
func (o *Oracle) Check(k EdgeKey, got string, found bool) error {
	cv, committed := o.committed[k]
	ms := o.maybe[k]
	if ms == nil {
		switch {
		case committed && !found:
			return fmt.Errorf("chaos: edge %v: acknowledged write lost (want %q, got absent)", k, cv)
		case committed && got != cv:
			return fmt.Errorf("chaos: edge %v: acknowledged value lost (want %q, got %q)", k, cv, got)
		case !committed && found:
			return fmt.Errorf("chaos: edge %v: phantom edge %q (never written or deleted by ack)", k, got)
		}
		return nil
	}
	if !found {
		if committed && !ms.absent {
			return fmt.Errorf("chaos: edge %v: acknowledged write lost (want %q or a failed-op value, got absent)", k, cv)
		}
		return nil // base state absent, or a failed delete explains it
	}
	if committed && got == cv {
		return nil
	}
	if _, ok := ms.values[got]; ok {
		return nil
	}
	return fmt.Errorf("chaos: edge %v: impossible value %q (committed %q/%v, %d failed candidates)",
		k, got, cv, committed, len(ms.values))
}

// mustBePresent reports whether the oracle requires the key to exist (an
// acknowledged value with no failed delete hanging over it).
func (o *Oracle) mustBePresent(k EdgeKey) bool {
	_, committed := o.committed[k]
	ms := o.maybe[k]
	return committed && (ms == nil || !ms.absent)
}

// graphReader is the read surface the oracle verifies — both *core.Engine
// (via RWNode) and *core.Replica satisfy it.
type graphReader interface {
	GetEdge(src graph.VertexID, typ graph.EdgeType, dst graph.VertexID) (graph.Edge, bool, error)
	Neighbors(src graph.VertexID, typ graph.EdgeType, limit int, fn func(graph.VertexID, graph.Properties) bool) error
}

// Verify checks every oracle key with a point read, then cross-checks the
// adjacency lists: a scan must surface exactly the keys the oracle allows
// to be present, with no phantoms and no missing acknowledged edges.
func (o *Oracle) Verify(r graphReader) error {
	type adj struct {
		src graph.VertexID
		typ graph.EdgeType
	}
	lists := make(map[adj]struct{})
	for _, k := range o.Keys() {
		lists[adj{k.Src, k.Typ}] = struct{}{}
		e, ok, err := r.GetEdge(k.Src, k.Typ, k.Dst)
		if err != nil {
			return fmt.Errorf("chaos: verify read %v: %w", k, err)
		}
		got := ""
		if ok {
			if v, has := e.Props.Get(propName); has {
				got = string(v)
			}
		}
		if err := o.Check(k, got, ok); err != nil {
			return err
		}
	}
	for l := range lists {
		seen := make(map[graph.VertexID]string)
		err := r.Neighbors(l.src, l.typ, 0, func(dst graph.VertexID, props graph.Properties) bool {
			v, _ := props.Get(propName)
			seen[dst] = string(v)
			return true
		})
		if err != nil {
			return fmt.Errorf("chaos: verify scan %d/%d: %w", l.src, l.typ, err)
		}
		for dst, got := range seen {
			if err := o.Check(EdgeKey{l.src, l.typ, dst}, got, true); err != nil {
				return fmt.Errorf("scan: %w", err)
			}
		}
		for _, k := range o.Keys() {
			if k.Src != l.src || k.Typ != l.typ || !o.mustBePresent(k) {
				continue
			}
			if _, ok := seen[k.Dst]; !ok {
				return fmt.Errorf("chaos: scan %d/%d: acknowledged edge %v missing", l.src, l.typ, k)
			}
		}
	}
	return nil
}
