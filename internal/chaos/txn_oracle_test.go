package chaos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/replication"
	"bg3/internal/shard"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// The cross-shard transaction chaos oracle (ISSUE 10): a storm of
// multi-shard batches through the 2PC path while leaders — coordinators
// AND participants — are killed between prepare and commit. The oracle
// replays every shard's durable WAL prefix, applies the recovery
// resolution rule to anything left in doubt (commit iff the
// coordinator's prefix holds the decision), and asserts that every
// batch is all-or-nothing across shards: both halves present with the
// same version, or neither. An acknowledged batch must have both.

// txnBatchKey addresses one writer's batch in the final models.
func txnBatchDst(w, n int) graph.VertexID {
	return graph.VertexID(10_000_000 + w*100_000 + n)
}

func TestTxnLeaderKillAllOrNothing(t *testing.T) {
	const (
		shards  = 4
		writers = 8
		rounds  = 150 // writers*rounds = 1200 multi-shard batches
	)
	g, err := shard.Open(shards,
		&storage.Options{ExtentSize: 32 << 10, ReclaimGrace: time.Hour},
		replication.RWOptions{
			Engine: core.Options{
				Tree: bwtree.Config{
					Policy:         bwtree.ReadOptimized,
					MaxPageEntries: 16,
					ConsolidateNum: 4,
				},
				// Keep every owner in the INIT tree so the per-shard WAL
				// replay can decode keys without tracking migrations.
				SplitThreshold: 0,
			},
			CommitWindow:  100 * time.Microsecond,
			MaxBatch:      16,
			PipelineDepth: 8,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	r := g.Router()

	// Each writer owns a pair of source vertices on two different shards;
	// batch n adds one edge from each source to a batch-unique dst, so
	// every batch is a two-shard transaction with unique keys.
	srcA := make([]graph.VertexID, writers)
	srcB := make([]graph.VertexID, writers)
	for w := 0; w < writers; w++ {
		base := graph.VertexID(1000*w + 1)
		srcA[w] = base
		for id := base + 1; ; id++ {
			if r.Owner(id) != r.Owner(base) {
				srcB[w] = id
				break
			}
		}
	}

	// Kill schedule: sampled at StagePrepared (in doubt: prepares
	// durable, no decision yet) alternating coordinator and a
	// non-coordinator participant, plus a couple at StageDecided
	// (commit durable, apply pending) to force the re-apply path.
	var (
		killMu       sync.Mutex
		prepSeen     atomic.Int64
		decideSeen   atomic.Int64
		coordKills   atomic.Int64
		partKills    atomic.Int64
		decidedKills atomic.Int64
		killFailures atomic.Int64
	)
	kill := func(target int, counter *atomic.Int64) {
		killMu.Lock()
		defer killMu.Unlock()
		err := g.Failover(target)
		switch {
		case err == nil:
			counter.Add(1)
		case errors.Is(err, storage.ErrFenced):
			// A concurrent failover won the shard; the kill still happened.
			counter.Add(1)
		default:
			killFailures.Add(1)
			t.Errorf("failover shard %d: %v", target, err)
		}
	}
	g.SetTxnStageHook(func(stage shard.TxnStage, txn uint64, members []int) {
		switch stage {
		case shard.StagePrepared:
			n := prepSeen.Add(1)
			if n%60 != 30 || coordKills.Load()+partKills.Load() >= 10 {
				return
			}
			if (n/60)%2 == 0 {
				kill(members[0], &coordKills) // coordinator
			} else {
				kill(members[len(members)-1], &partKills) // participant
			}
		case shard.StageDecided:
			n := decideSeen.Add(1)
			if n%500 != 250 || decidedKills.Load() >= 2 {
				return
			}
			kill(members[len(members)-1], &decidedKills)
		}
	})

	applyRetry := func(muts []graph.Mutation) error {
		deadline := time.Now().Add(20 * time.Second)
		for {
			err := g.ApplyBatch(muts)
			if err == nil {
				return nil
			}
			if !errors.Is(err, storage.ErrFenced) && !errors.Is(err, wal.ErrWriterFailed) &&
				!errors.Is(err, wal.ErrCommitterStopped) && !errors.Is(err, shard.ErrTxnAborted) {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("batch still failing after failovers: %w", err)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				ver := []byte(fmt.Sprintf("%d:%d", w, n))
				dst := txnBatchDst(w, n)
				muts := []graph.Mutation{
					graph.AddEdgeMut(graph.Edge{
						Src: srcA[w], Dst: dst, Type: graph.ETypeFollow,
						Props: graph.Properties{{Name: snapProp, Value: ver}},
					}),
					graph.AddEdgeMut(graph.Edge{
						Src: srcB[w], Dst: dst, Type: graph.ETypeFollow,
						Props: graph.Properties{{Name: snapProp, Value: ver}},
					}),
				}
				if err := applyRetry(muts); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("writer %d batch %d: %w", w, n, err)
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	g.SetTxnStageHook(nil)
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if coordKills.Load() == 0 || partKills.Load() == 0 || decidedKills.Load() == 0 {
		t.Fatalf("kill schedule too thin: %d coordinator kills, %d participant kills, %d post-decision kills",
			coordKills.Load(), partKills.Load(), decidedKills.Load())
	}
	if killFailures.Load() != 0 {
		t.Fatalf("%d failovers failed outright", killFailures.Load())
	}

	// Replay each shard's durable WAL prefix: data records into the
	// per-shard model, transaction control records into the resolution
	// state. Only the gapless prefix counts — the reader purges groups
	// fenced off by the failovers before delivering.
	models := make([]map[EdgeKey]string, shards)
	prepares := make([]map[uint64]*shard.TxnPayload, shards)
	resolved := make([]map[uint64]bool, shards)
	commits := make([]map[uint64]bool, shards)
	for i := 0; i < shards; i++ {
		models[i] = make(map[EdgeKey]string)
		prepares[i] = make(map[uint64]*shard.TxnPayload)
		resolved[i] = make(map[uint64]bool)
		commits[i] = make(map[uint64]bool)
		reader := wal.NewReader(g.Store(i))
		for {
			gs, err := reader.PollGroups()
			if err != nil {
				t.Fatalf("shard %d replay: %v", i, err)
			}
			if len(gs) == 0 {
				break
			}
			for _, grp := range gs {
				for _, rec := range grp {
					switch rec.Type {
					case wal.RecordTxnPrepare:
						if p, derr := shard.DecodePrepareRecord(rec); derr == nil {
							prepares[i][rec.TreeID] = p
						} else {
							t.Fatalf("shard %d: undecodable durable prepare txn %d: %v", i, rec.TreeID, derr)
						}
					case wal.RecordTxnCommit:
						commits[i][rec.TreeID] = true
					case wal.RecordTxnAbort, wal.RecordTxnApplied:
						resolved[i][rec.TreeID] = true
					default:
						if err := replayApply(models[i], rec); err != nil {
							t.Fatalf("shard %d replay LSN %d: %v", i, rec.LSN, err)
						}
					}
				}
			}
		}
	}

	// Recovery's resolution rule: an in-doubt prepare commits iff the
	// coordinator's durable prefix holds the decision; otherwise it is
	// presumed aborted and contributes nothing.
	inDoubt, resolvedCommits := 0, 0
	for i := 0; i < shards; i++ {
		for txn, p := range prepares[i] {
			if resolved[i][txn] {
				continue
			}
			inDoubt++
			if !commits[p.Coord][txn] {
				continue
			}
			resolvedCommits++
			for _, m := range p.Muts {
				if m.Kind != graph.MutAddEdge {
					t.Fatalf("shard %d txn %d: unexpected mutation kind %d", i, txn, m.Kind)
				}
				v, _ := m.Edge.Props.Get(snapProp)
				models[i][EdgeKey{Src: m.Edge.Src, Typ: m.Edge.Type, Dst: m.Edge.Dst}] = string(v)
			}
		}
	}

	// The oracle: every batch all-or-nothing, every acknowledged batch
	// present on both shards with its version. Writers only returned
	// after every batch was acknowledged, so "nothing" would be a lost
	// ack and "half" a prefix commit — both fatal.
	halves, full := 0, 0
	for w := 0; w < writers; w++ {
		for n := 0; n < rounds; n++ {
			want := fmt.Sprintf("%d:%d", w, n)
			dst := txnBatchDst(w, n)
			va, oka := models[r.Owner(srcA[w])][EdgeKey{Src: srcA[w], Typ: graph.ETypeFollow, Dst: dst}]
			vb, okb := models[r.Owner(srcB[w])][EdgeKey{Src: srcB[w], Typ: graph.ETypeFollow, Dst: dst}]
			if oka != okb {
				halves++
				t.Errorf("prefix commit: batch %d:%d half-applied (shard %d=%v, shard %d=%v)",
					w, n, r.Owner(srcA[w]), oka, r.Owner(srcB[w]), okb)
				continue
			}
			if !oka {
				t.Errorf("acknowledged batch %d:%d lost on both shards", w, n)
				continue
			}
			if va != want || vb != want {
				t.Errorf("batch %d:%d version mismatch: %q / %q, want %q", w, n, va, vb, want)
				continue
			}
			full++
		}
	}
	if halves != 0 {
		t.Fatalf("%d prefix commits across %d batches", halves, writers*rounds)
	}
	if full != writers*rounds {
		t.Fatalf("only %d of %d acknowledged batches fully present", full, writers*rounds)
	}
	t.Logf("verified %d multi-shard batches all-or-nothing across %d shards "+
		"(%d coordinator kills, %d participant kills, %d post-decision kills, %d in-doubt prepares, %d resolved to commit)",
		full, shards, coordKills.Load(), partKills.Load(), decidedKills.Load(), inDoubt, resolvedCommits)
}
