package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/replication"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// FailoverConfig parameterizes one failover chaos run: a seeded workload
// interrupted by leader depositions, each answered with an epoch-fenced
// promotion instead of an in-place recovery.
type FailoverConfig struct {
	// Seed drives the workload RNG. Rounds is how many failovers the run
	// performs, spread evenly through Ops (defaults 3 and 1200).
	Seed   int64
	Ops    int
	Rounds int

	// ZombieWrites is how many writes are attempted on each deposed leader
	// after its successor has claimed the fence (default 6). Every one must
	// fail — with an error wrapping storage.ErrFenced or wal.ErrWriterFailed
	// — and none may become visible on the new leader.
	ZombieWrites int

	// Key-space bounds, as in Config (defaults 12, 3, 24).
	Owners, EdgeTypes, Dsts int

	// DeleteFrac is the fraction of deletes (default 0.2).
	DeleteFrac float64

	// CommitWindow / CommitMaxBatch pass through to each leader's group
	// committer, so the kill lands mid-group-commit rather than between
	// single-record flushes.
	CommitWindow   time.Duration
	CommitMaxBatch int

	// PipelineDepth passes through to each leader's committer: > 1 keeps
	// several group appends in flight, so depositions land with the pipeline
	// full rather than between serial appends.
	PipelineDepth int

	// InflightBurst is how many concurrent writes are racing the fence claim
	// on each live (non-crash) deposition — with PipelineDepth > 1 they keep
	// multiple groups in flight at the moment the follower is promoted. Each
	// burst write obeys maybe-semantics: acked ones must survive the
	// failover, failed ones may or may not. 0 disables the burst.
	InflightBurst int

	// StorageWriteLatency simulates slow storage appends, widening the
	// window in which the promotion races in-flight groups.
	StorageWriteLatency time.Duration

	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Ops <= 0 {
		c.Ops = 1200
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.ZombieWrites <= 0 {
		c.ZombieWrites = 6
	}
	if c.Owners <= 0 {
		c.Owners = 12
	}
	if c.EdgeTypes <= 0 {
		c.EdgeTypes = 3
	}
	if c.Dsts <= 0 {
		c.Dsts = 24
	}
	if c.DeleteFrac == 0 {
		c.DeleteFrac = 0.2
	}
	return c
}

// FailoverReport summarizes a failover chaos run.
type FailoverReport struct {
	Ops    int // workload operations issued
	Acked  int // acknowledged (must survive every failover)
	Failed int // returned an error (maybe-semantics)

	Failovers     int    // promotions performed
	CrashKills    int    // rounds where the leader was crashed before promotion
	LiveKills     int    // rounds where a healthy leader was fenced out
	ZombieWrites  int    // writes attempted on deposed leaders
	ZombieFenced  int    // of those, rejected with a fencing/fail-stop error
	BurstWrites   int    // concurrent writes racing the fence at depositions
	BurstAcked    int    // of those, acknowledged durable (must survive)
	FencedAppends int64  // storage-level appends rejected by the fence
	FinalEpoch    uint64 // epoch of the last promoted leader
}

// RunFailover executes one failover chaos run: the workload runs against a
// leader that is repeatedly deposed — on odd rounds killed mid-group-commit
// by an injected crash fault (leaving a torn group envelope on the WAL
// tail), on even rounds left perfectly healthy — and replaced by promoting
// a read-only follower over the same shared store. After each promotion the
// deposed leader is used as a zombie: it keeps issuing writes, every one of
// which must be rejected by the epoch fence rather than silently lost or,
// worse, silently applied. The oracle then verifies the promoted leader:
// every acknowledged write survives, failed writes obey maybe-semantics,
// and no zombie value is visible anywhere.
func RunFailover(cfg FailoverConfig) (*FailoverReport, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := &FailoverReport{}
	oracle := NewOracle()

	plan := storage.NewFaultPlan(storage.FaultConfig{Seed: cfg.Seed * 31})
	plan.SetEnabled(false)
	st := storage.Open(&storage.Options{
		ExtentSize:   8 << 10,
		ReclaimGrace: time.Hour,
		WriteLatency: cfg.StorageWriteLatency,
		Faults:       plan,
	})
	defer st.Close()

	rwOpts := replication.RWOptions{
		Engine: core.Options{
			Tree: bwtree.Config{
				Policy:         bwtree.ReadOptimized,
				MaxPageEntries: 24,
			},
		},
		CommitWindow:  cfg.CommitWindow,
		MaxBatch:      cfg.CommitMaxBatch,
		PipelineDepth: cfg.PipelineDepth,
	}

	rw, err := replication.NewRWNode(st, rwOpts)
	if err != nil {
		return rep, fmt.Errorf("chaos: failover bootstrap: %w", err)
	}
	live := []*replication.RWNode{rw} // every node not yet stopped
	defer func() {
		for _, n := range live {
			n.Stop()
		}
	}()
	if _, err := rw.WriteSnapshot(); err != nil {
		return rep, fmt.Errorf("chaos: baseline snapshot: %w", err)
	}

	drawKey := func() EdgeKey {
		return EdgeKey{
			Src: graph.VertexID(1 + rng.Intn(cfg.Owners)),
			Typ: graph.EdgeType(1 + rng.Intn(cfg.EdgeTypes)),
			Dst: graph.VertexID(1 + rng.Intn(cfg.Dsts)),
		}
	}
	workOne := func(i int) {
		k := drawKey()
		rep.Ops++
		if rng.Float64() < cfg.DeleteFrac {
			if err := rw.DeleteEdge(k.Src, k.Typ, k.Dst); err != nil {
				rep.Failed++
				oracle.FailDelete(k)
			} else {
				rep.Acked++
				oracle.CommitDelete(k)
			}
			return
		}
		val := fmt.Sprintf("f%d.%d", cfg.Seed, i)
		e := graph.Edge{Src: k.Src, Dst: k.Dst, Type: k.Typ,
			Props: graph.Properties{{Name: propName, Value: []byte(val)}}}
		if err := rw.AddEdge(e); err != nil {
			rep.Failed++
			oracle.FailPut(k, val)
		} else {
			rep.Acked++
			oracle.CommitPut(k, val)
		}
	}

	// depose fences the current leader out by promoting a fresh follower,
	// then drives zombie writes through the deposed node. crash kills the
	// leader mid-group-commit first, so the promotion drain must also cope
	// with a torn group envelope on the WAL tail. On live rounds an
	// InflightBurst of concurrent writes races the fence claim, so with
	// PipelineDepth > 1 the promotion lands with several group appends in
	// flight; each burst write obeys maybe-semantics.
	depose := func(round int, crash bool) error {
		old := rw
		fencedBefore := st.Stats().FencedAppends

		var (
			burstWG   sync.WaitGroup
			burstKeys []EdgeKey
			burstVals []string
			burstErrs []error
		)
		if !crash && cfg.InflightBurst > 0 {
			burstKeys = make([]EdgeKey, cfg.InflightBurst)
			burstVals = make([]string, cfg.InflightBurst)
			burstErrs = make([]error, cfg.InflightBurst)
			for j := 0; j < cfg.InflightBurst; j++ {
				// Keys outside the workload's Dst range and unique per burst
				// write, so the oracle's expected value is never ambiguous
				// under concurrency.
				k := EdgeKey{
					Src: graph.VertexID(1 + j%cfg.Owners),
					Typ: graph.EdgeType(1 + j%cfg.EdgeTypes),
					Dst: graph.VertexID(cfg.Dsts + 1 + round*cfg.InflightBurst + j),
				}
				v := fmt.Sprintf("burst%d.%d.%d", cfg.Seed, round, j)
				burstKeys[j], burstVals[j] = k, v
				burstWG.Add(1)
				go func(j int, k EdgeKey, v string) {
					defer burstWG.Done()
					burstErrs[j] = old.AddEdge(graph.Edge{Src: k.Src, Dst: k.Dst, Type: k.Typ,
						Props: graph.Properties{{Name: propName, Value: []byte(v)}}})
				}(j, k, v)
			}
			// Let the leading groups reach storage so the fence claim lands
			// mid-pipeline: some burst writes ack durable before it, the rest
			// are caught in flight.
			time.Sleep(2 * cfg.StorageWriteLatency)
		}

		if crash {
			rep.CrashKills++
			plan.SetEnabled(true)
			// The crash point tears the dying append mid-write, so the kill
			// lands inside a group envelope, not between flushes.
			plan.ScheduleCrash(1)
			for j := 0; j < 4; j++ { // a few ops to hit the crash point
				workOne(cfg.Ops + round*8 + j)
			}
			plan.ClearCrash()
			plan.SetEnabled(false)
			if !writerDead(old) {
				return fmt.Errorf("chaos: round %d: crash fault did not kill the leader", round)
			}
		} else {
			rep.LiveKills++
		}

		ro, err := replication.NewRONodeFromSnapshot(st, time.Hour, 0)
		if err != nil {
			return fmt.Errorf("chaos: round %d: follower bootstrap: %w", round, err)
		}
		next, err := replication.Promote(ro, rwOpts)
		if err != nil {
			return fmt.Errorf("chaos: round %d: promote: %w", round, err)
		}
		live = append(live, next)
		rep.Failovers++

		// Resolve the burst that raced the fence claim: an acked write was
		// durable before the fence and must survive the failover; a failed
		// one is a maybe. Registration happens serially, after the race.
		burstWG.Wait()
		for j := range burstErrs {
			rep.Ops++
			rep.BurstWrites++
			if burstErrs[j] == nil {
				rep.Acked++
				rep.BurstAcked++
				oracle.CommitPut(burstKeys[j], burstVals[j])
			} else {
				rep.Failed++
				oracle.FailPut(burstKeys[j], burstVals[j])
			}
		}

		// Let the deposed pipeline's in-flight appends finish before the
		// zero-byte accounting below: a fenced flight's storage round trip
		// can outlive its (already failed) commit ack.
		for i := 0; old.Logger().InflightGroups() > 0 && i < 10000; i++ {
			time.Sleep(100 * time.Microsecond)
		}
		if n := old.Logger().InflightGroups(); n != 0 {
			return fmt.Errorf("chaos: round %d: %d deposed flights stuck in flight", round, n)
		}

		// The deposed leader is now a zombie: it may be healthy, it may
		// even append faster than the new leader — the fence must reject
		// every attempt with an explicit error. The values are drawn from
		// the live key space but never registered in the oracle, so any
		// zombie write that leaked through would be caught by Verify as a
		// phantom or an impossible value.
		zombieBytesBefore := st.Stats().BytesWritten
		for j := 0; j < cfg.ZombieWrites; j++ {
			k := drawKey()
			rep.ZombieWrites++
			zerr := old.AddEdge(graph.Edge{Src: k.Src, Dst: k.Dst, Type: k.Typ,
				Props: graph.Properties{{Name: propName, Value: []byte(fmt.Sprintf("zombie%d.%d", round, j))}}})
			if zerr == nil {
				return fmt.Errorf("chaos: round %d: zombie write %d acknowledged after fence", round, j)
			}
			if !errors.Is(zerr, storage.ErrFenced) && !errors.Is(zerr, wal.ErrWriterFailed) &&
				!errors.Is(zerr, storage.ErrCrashed) {
				return fmt.Errorf("chaos: round %d: zombie write %d failed oddly: %w", round, j, zerr)
			}
			rep.ZombieFenced++
		}

		// Fenced appends persist nothing: the whole zombie phase — with the
		// new leader idle and the deposed pipeline drained — must leave the
		// store's byte count untouched.
		if delta := st.Stats().BytesWritten - zombieBytesBefore; delta != 0 {
			return fmt.Errorf("chaos: round %d: fenced zombie writes persisted %d bytes", round, delta)
		}
		// A live deposition always exercises the fence with real appends —
		// either a burst group caught mid-flight or the first zombie write.
		if !crash && cfg.ZombieWrites > 0 && st.Stats().FencedAppends == fencedBefore {
			return fmt.Errorf("chaos: round %d: live deposition produced no fenced appends", round)
		}

		old.Stop()
		live = live[1:]
		rw = next
		logf("chaos: round %d (crash=%v): promoted to epoch %d after %d acked",
			round, crash, rw.Epoch(), rep.Acked)
		if err := oracle.Verify(rw.Engine()); err != nil {
			return fmt.Errorf("chaos: round %d: after promotion: %w", round, err)
		}
		return nil
	}

	segment := cfg.Ops / (cfg.Rounds + 1)
	for i := 0; i < cfg.Ops; i++ {
		workOne(i)
		if round := i / segment; round >= 1 && round <= cfg.Rounds && i%segment == 0 {
			if err := depose(round, round%2 == 1); err != nil {
				return rep, err
			}
		}
	}

	if err := oracle.Verify(rw.Engine()); err != nil {
		return rep, fmt.Errorf("chaos: final leader verify: %w", err)
	}

	// A follower bootstrapped after the last failover must agree too: the
	// promoted leader's snapshot plus the post-fence WAL tail reconstructs
	// the same graph, with every stale-epoch record skipped.
	ro, err := replication.NewRONodeFromSnapshot(st, time.Millisecond, 0)
	if err != nil {
		return rep, fmt.Errorf("chaos: final follower bootstrap: %w", err)
	}
	if err := ro.Poll(); err != nil {
		ro.Stop()
		return rep, fmt.Errorf("chaos: final follower poll: %w", err)
	}
	verr := oracle.Verify(ro.Replica())
	ro.Stop()
	if verr != nil {
		return rep, fmt.Errorf("chaos: final follower verify: %w", verr)
	}

	rep.FencedAppends = st.Stats().FencedAppends
	rep.FinalEpoch = rw.Epoch()
	logf("chaos: failover done: %d ops (%d acked, %d failed), %d failovers, %d/%d zombies fenced, %d fenced appends, epoch %d",
		rep.Ops, rep.Acked, rep.Failed, rep.Failovers, rep.ZombieFenced, rep.ZombieWrites,
		rep.FencedAppends, rep.FinalEpoch)
	return rep, nil
}
