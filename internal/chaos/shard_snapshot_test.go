package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/replication"
	"bg3/internal/shard"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// The cross-shard chaos oracle (ISSUE 9): scatter-gather traversals over
// a pinned ShardSnapshot run concurrently with multi-shard ApplyBatch
// storms through depth-8 pipelined committers and per-shard failovers.
// The oracle is exact: every traversal's observation must equal the
// union of the states produced by replaying each shard's WAL prefix up
// to that shard's pinned epoch — and every vector component must be a
// group-commit boundary of its own shard's log (or 0). Anything else is
// a torn cross-shard read.

// shardObservation is one pinned scatter-gather traversal's complete
// view: the pinned epoch vector plus every visited source's adjacency
// with the version each edge carried.
type shardObservation struct {
	vector shard.Vector
	adj    map[graph.VertexID]map[graph.VertexID]string
}

// shardTraverseAt performs the 2-hop traversal through a pinned cut:
// hub -> writer sources -> per-writer edge fans, crossing shard
// boundaries at every hop.
func shardTraverseAt(snap *shard.Snapshot, hub graph.VertexID) (shardObservation, error) {
	obs := shardObservation{
		vector: append(shard.Vector(nil), snap.Epochs()...),
		adj:    make(map[graph.VertexID]map[graph.VertexID]string),
	}
	record := func(src graph.VertexID) error {
		m := make(map[graph.VertexID]string)
		err := snap.Neighbors(src, graph.ETypeFollow, 0, func(dst graph.VertexID, props graph.Properties) bool {
			val, _ := props.Get(snapProp)
			m[dst] = string(val)
			return true
		})
		obs.adj[src] = m
		return err
	}
	if err := record(hub); err != nil {
		return obs, err
	}
	for src := range obs.adj[hub] {
		if err := record(src); err != nil {
			return obs, err
		}
	}
	return obs, nil
}

// TestShardSnapshotMatchesUnionOfPrefixes is the sharding acceptance
// oracle: at 4 shards, with depth-8 commit pipelines, concurrent
// multi-shard batch storms, and two mid-run leader failovers racing the
// readers, every pinned cross-shard traversal observes exactly the graph
// produced by the union of per-shard WAL prefixes at its pinned epoch
// vector — never a partial group on any shard, never a mix of two
// boundaries, no matter which leaders died meanwhile.
func TestShardSnapshotMatchesUnionOfPrefixes(t *testing.T) {
	const (
		shards   = 4
		hub      = graph.VertexID(1000)
		writers  = 8
		rounds   = 40
		edgesPer = 6
		readers  = 4
	)
	g, err := shard.Open(shards,
		&storage.Options{ExtentSize: 8 << 10, ReclaimGrace: time.Hour},
		replication.RWOptions{
			Engine: core.Options{
				Tree: bwtree.Config{
					Policy:         bwtree.ReadOptimized,
					MaxPageEntries: 16,
					ConsolidateNum: 4,
				},
				// Keep every owner in the INIT tree so the per-shard WAL
				// replay can decode keys without tracking migrations.
				SplitThreshold: 0,
			},
			CommitWindow:  100 * time.Microsecond,
			MaxBatch:      16,
			PipelineDepth: 8,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Seed the hub's first hop: one edge to each writer's source vertex.
	// The hub lives on one shard; the sources hash across all of them, so
	// hop 2 always fans out.
	seed := make([]graph.Mutation, 0, writers)
	for w := 0; w < writers; w++ {
		seed = append(seed, graph.AddEdgeMut(graph.Edge{
			Src: hub, Dst: graph.VertexID(w + 1), Type: graph.ETypeFollow,
			Props: graph.Properties{{Name: snapProp, Value: []byte("seed")}},
		}))
	}
	if err := g.ApplyBatch(seed); err != nil {
		t.Fatal(err)
	}

	var (
		stop     = make(chan struct{})
		writerWG sync.WaitGroup
		auxWG    sync.WaitGroup
		obsMu    sync.Mutex
		obsList  []shardObservation
		firstErr error
	)
	fail := func(err error) {
		obsMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		obsMu.Unlock()
	}

	// Writers race the failovers: a batch rejected by a fencing leader is
	// retried against its successor (idempotent upserts).
	applyRetry := func(muts []graph.Mutation) error {
		deadline := time.Now().Add(10 * time.Second)
		for {
			err := g.ApplyBatch(muts)
			if err == nil {
				return nil
			}
			if !errors.Is(err, storage.ErrFenced) && !errors.Is(err, wal.ErrWriterFailed) &&
				!errors.Is(err, wal.ErrCommitterStopped) {
				return err
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("still fenced after failover: %w", err)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			src := graph.VertexID(w + 1)
			for n := 0; n < rounds; n++ {
				ver := []byte(strconv.Itoa(n))
				muts := make([]graph.Mutation, 0, edgesPer)
				for d := 0; d < edgesPer; d++ {
					muts = append(muts, graph.AddEdgeMut(graph.Edge{
						Src: src, Dst: graph.VertexID(5000 + d), Type: graph.ETypeFollow,
						Props: graph.Properties{{Name: snapProp, Value: ver}},
					}))
				}
				if err := applyRetry(muts); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			last := make(shard.Vector, shards)
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := g.Snapshot()
				obs, err := shardTraverseAt(snap, hub)
				snap.Close()
				if err != nil {
					fail(err)
					return
				}
				for i, e := range obs.vector {
					if e < last[i] {
						fail(fmt.Errorf("shard %d epoch went backwards: %d after %d", i, e, last[i]))
						return
					}
					last[i] = e
				}
				obsMu.Lock()
				obsList = append(obsList, obs)
				obsMu.Unlock()
			}
		}()
	}

	// Two per-shard failovers racing the storm, on different shards.
	time.Sleep(2 * time.Millisecond)
	if err := g.Failover(1); err != nil {
		t.Fatalf("failover shard 1: %v", err)
	}
	time.Sleep(2 * time.Millisecond)
	if err := g.Failover(3); err != nil {
		t.Fatalf("failover shard 3: %v", err)
	}

	writerWG.Wait()
	close(stop)
	auxWG.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if got := g.Cluster().Failovers(); got != 2 {
		t.Fatalf("failovers = %d, want 2", got)
	}

	// Build the exact per-shard oracle: replay each shard's WAL group by
	// group, snapshotting the model at every group boundary.
	boundaries := make([]map[uint64]map[EdgeKey]string, shards)
	totalGroups := 0
	for i := 0; i < shards; i++ {
		boundaries[i] = map[uint64]map[EdgeKey]string{0: {}}
		model := make(map[EdgeKey]string)
		reader := wal.NewReader(g.Store(i))
		for {
			gs, err := reader.PollGroups()
			if err != nil {
				t.Fatalf("shard %d: %v", i, err)
			}
			if len(gs) == 0 {
				break
			}
			for _, grp := range gs {
				for _, rec := range grp {
					if err := replayApply(model, rec); err != nil {
						t.Fatalf("shard %d replay LSN %d: %v", i, rec.LSN, err)
					}
				}
				snap := make(map[EdgeKey]string, len(model))
				for k, v := range model {
					snap[k] = v
				}
				boundaries[i][uint64(grp[len(grp)-1].LSN)] = snap
				totalGroups++
			}
		}
		if skips := reader.FencedSkips(); skips != 0 {
			// Depth-8 pipelining means a later flight can be durable when
			// the fence cuts off an earlier one; the reader purges such
			// zombie groups and the replay above never sees them, so they
			// cannot perturb the oracle. Log for visibility only.
			t.Logf("shard %d: %d fence-purged zombie records (pipelined in-flight at failover)", i, skips)
		}
	}
	if totalGroups < writers*rounds*edgesPer/16 {
		t.Fatalf("suspiciously few commit groups: %d", totalGroups)
	}

	// Check every observation against the union of per-shard prefixes at
	// its pinned vector. Writes route by owner, so the per-shard models
	// are disjoint and the union is a plain merge.
	checked, crossShard := 0, 0
	for _, obs := range obsList {
		union := make(map[EdgeKey]string)
		for i, e := range obs.vector {
			m, ok := boundaries[i][uint64(e)]
			if !ok {
				t.Fatalf("shard %d pinned epoch %d is not a group-commit boundary (%d boundaries)",
					i, e, len(boundaries[i]))
			}
			for k, v := range m {
				union[k] = v
			}
		}
		if err := checkObservation(snapObservation{adj: obs.adj}, union); err != nil {
			t.Fatalf("torn cross-shard traversal at vector %v: %v", obs.vector, err)
		}
		checked++
		distinct := make(map[int]bool)
		r := g.Router()
		for src, m := range obs.adj {
			if len(m) > 0 {
				distinct[r.Owner(src)] = true
			}
		}
		if len(distinct) > 1 {
			crossShard++
		}
	}
	if checked == 0 {
		t.Fatal("no traversal completed; the oracle is vacuous")
	}
	if crossShard == 0 {
		t.Fatal("no traversal actually crossed shards; the oracle is vacuous")
	}
	t.Logf("verified %d pinned traversals (%d cross-shard) against %d group boundaries across %d shards",
		checked, crossShard, totalGroups, shards)
}
