package chaos

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/replication"
	"bg3/internal/storage"
	"bg3/internal/wal"
)

// The edge-block snapshot oracle (ISSUE 8): the snapshot-isolation suite
// extended across consolidation-to-block transitions. A super-vertex hub
// migrates to a dedicated tree whose adjacency is continuously packed into
// CSR edge blocks — sealed, rebuilt, and superseded — while writers churn
// its edges through a depth-8 pipelined committer and pinned readers
// traverse it. The oracle stays exact: every pinned traversal must equal
// the WAL prefix at its epoch, whether the read was served by a packed
// block, the block-plus-overlay merge, or the legacy delta path.

// replayForest applies one WAL record to the split oracle model: INIT
// records carry owner[8]|etype[2]|dst[8] keys, dedicated-tree records
// carry etype[2]|dst[8] keys attributed to their owner via the
// RecordOwnerAssign directory. The two sides are modeled separately
// because a migration's INIT deletes must not erase the dedicated copies;
// a reader's view of an owner is the union (values are identical on
// overlap by the migration ordering).
func replayForest(init, ded map[EdgeKey]string, treeOwner map[uint64]graph.VertexID, rec *wal.Record) error {
	switch rec.Type {
	case wal.RecordOwnerAssign:
		treeOwner[rec.TreeID] = graph.VertexID(beUint64(rec.Key))
		return nil
	case wal.RecordPut, wal.RecordDelete:
	default:
		return nil
	}
	var (
		model map[EdgeKey]string
		owner graph.VertexID
		ekey  []byte
	)
	switch len(rec.Key) {
	case 18:
		model, owner, ekey = init, graph.VertexID(beUint64(rec.Key[:8])), rec.Key[8:]
	case 10:
		// treeOwner is pre-built from a full WAL pass: the migration's copy
		// records precede the owner-assignment record, so attribution can't
		// be resolved in stream order.
		o, ok := treeOwner[rec.TreeID]
		if !ok {
			return fmt.Errorf("tree %d has data records but no owner assignment anywhere in the WAL", rec.TreeID)
		}
		model, owner, ekey = ded, o, rec.Key
	default:
		return fmt.Errorf("unexpected key length %d", len(rec.Key))
	}
	et, dst, err := graph.DecodeEdgeKey(ekey)
	if err != nil {
		return err
	}
	k := EdgeKey{Src: owner, Typ: et, Dst: dst}
	if rec.Type == wal.RecordDelete {
		delete(model, k)
		return nil
	}
	props, err := graph.DecodeProps(rec.Value)
	if err != nil {
		return err
	}
	val, _ := props.Get(snapProp)
	model[k] = string(val)
	return nil
}

// TestSnapshotTraversalAcrossBlockBuilds is the ISSUE 8 acceptance
// oracle: pinned full-adjacency traversals of a block-backed super-vertex
// match their WAL-prefix boundary exactly while block builds, rebuilds,
// flushes, and GC race the pins at pipeline depth 8.
func TestSnapshotTraversalAcrossBlockBuilds(t *testing.T) {
	const (
		hub      = graph.VertexID(1)
		writers  = 8
		rounds   = 40
		edgesPer = 6
		readers  = 4
	)
	st := storage.Open(&storage.Options{ExtentSize: 8 << 10, ReclaimGrace: time.Hour})
	defer st.Close()
	rw, err := replication.NewRWNode(st, replication.RWOptions{
		Engine: core.Options{
			Tree: bwtree.Config{
				Policy:         bwtree.ReadOptimized,
				MaxPageEntries: 16,
				ConsolidateNum: 4,
				// Aggressive thresholds: the hub's dedicated tree packs as
				// soon as it migrates and rebuilds every few overlay ops, so
				// block transitions happen constantly under the readers.
				EdgeBlockMinEntries: 16,
				EdgeBlockRebuildOps: 8,
			},
			// Low enough that the hub (writers*edgesPer edges) migrates to a
			// dedicated tree during seeding.
			SplitThreshold: 32,
		},
		CommitWindow:  100 * time.Microsecond,
		MaxBatch:      16,
		PipelineDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Stop()

	// Seed the hub's full adjacency: every writer's edge range, so the seed
	// batch alone pushes the hub past the migration threshold.
	seed := make([]graph.Mutation, 0, writers*edgesPer)
	for w := 0; w < writers; w++ {
		for d := 0; d < edgesPer; d++ {
			seed = append(seed, graph.AddEdgeMut(graph.Edge{
				Src: hub, Dst: graph.VertexID(1000*(w+1) + d), Type: graph.ETypeFollow,
				Props: graph.Properties{{Name: snapProp, Value: []byte("seed")}},
			}))
		}
	}
	if err := rw.ApplyBatch(seed); err != nil {
		t.Fatal(err)
	}

	var (
		stop     = make(chan struct{})
		writerWG sync.WaitGroup
		auxWG    sync.WaitGroup
		obsMu    sync.Mutex
		obsList  []snapObservation
		firstErr error
	)
	fail := func(err error) {
		obsMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		obsMu.Unlock()
	}

	// Writers churn the hub's adjacency in place: every round rewrites the
	// writer's edge range with a new version, and deletes/re-adds one edge
	// so the oracle also covers tombstones crossing a block seal.
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for n := 0; n < rounds; n++ {
				ver := []byte(strconv.Itoa(n))
				muts := make([]graph.Mutation, 0, edgesPer+1)
				for d := 0; d < edgesPer; d++ {
					muts = append(muts, graph.AddEdgeMut(graph.Edge{
						Src: hub, Dst: graph.VertexID(1000*(w+1) + d), Type: graph.ETypeFollow,
						Props: graph.Properties{{Name: snapProp, Value: ver}},
					}))
				}
				if n%2 == 1 {
					muts = append(muts, graph.DeleteEdgeMut(hub, graph.ETypeFollow, graph.VertexID(1000*(w+1))))
				}
				if err := rw.ApplyBatch(muts); err != nil {
					fail(err)
					return
				}
			}
		}(w)
	}

	// Block/flush/GC churn: force builds and rebuilds continuously so
	// seals, overlay cuts, and part supersessions race the pinned readers.
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rw.Engine().Forest().BuildEdgeBlocks(); err != nil {
				fail(err)
				return
			}
			_ = rw.Checkpoint()
			if _, err := rw.Engine().RunGC(2); err != nil {
				fail(err)
				return
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	for r := 0; r < readers; r++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			var lastEpoch wal.LSN
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := rw.Engine().View()
				obs := snapObservation{
					epoch: wal.LSN(v.Epoch()),
					adj:   make(map[graph.VertexID]map[graph.VertexID]string),
				}
				m := make(map[graph.VertexID]string)
				err := v.Neighbors(hub, graph.ETypeFollow, 0, func(dst graph.VertexID, props graph.Properties) bool {
					val, _ := props.Get(snapProp)
					m[dst] = string(val)
					return true
				})
				obs.adj[hub] = m
				v.Close()
				if err != nil {
					fail(err)
					return
				}
				if obs.epoch < lastEpoch {
					fail(fmt.Errorf("read epoch went backwards: %d after %d", obs.epoch, lastEpoch))
					return
				}
				lastEpoch = obs.epoch
				obsMu.Lock()
				obsList = append(obsList, obs)
				obsMu.Unlock()
			}
		}()
	}

	writerWG.Wait()
	close(stop)
	auxWG.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Exact oracle: replay the WAL group by group with the split
	// INIT/dedicated model, snapshotting the hub's union adjacency at every
	// group boundary. First pass: collect every commit group and resolve
	// the tree->owner directory (assignment records trail the copies they
	// describe). Second pass: replay in order.
	reader := wal.NewReader(st)
	var allGroups [][]*wal.Record
	treeOwner := make(map[uint64]graph.VertexID)
	for {
		gs, err := reader.PollGroups()
		if err != nil {
			t.Fatal(err)
		}
		if len(gs) == 0 {
			break
		}
		for _, g := range gs {
			allGroups = append(allGroups, g)
			for _, rec := range g {
				if rec.Type == wal.RecordOwnerAssign {
					treeOwner[rec.TreeID] = graph.VertexID(beUint64(rec.Key))
				}
			}
		}
	}
	boundaries := map[wal.LSN]map[EdgeKey]string{0: {}}
	initModel := make(map[EdgeKey]string)
	dedModel := make(map[EdgeKey]string)
	groups := 0
	{
		for _, g := range allGroups {
			for _, rec := range g {
				if err := replayForest(initModel, dedModel, treeOwner, rec); err != nil {
					t.Fatalf("replay LSN %d: %v", rec.LSN, err)
				}
			}
			union := make(map[EdgeKey]string, len(initModel)+len(dedModel))
			for k, v := range initModel {
				union[k] = v
			}
			for k, v := range dedModel {
				union[k] = v
			}
			boundaries[g[len(g)-1].LSN] = union
			groups++
		}
	}
	if len(treeOwner) == 0 {
		t.Fatal("the hub never migrated to a dedicated tree; the block path was never exercised")
	}

	checked := 0
	for _, obs := range obsList {
		m, ok := boundaries[obs.epoch]
		if !ok {
			t.Fatalf("pinned epoch %d is not a group-commit boundary (%d boundaries)", obs.epoch, len(boundaries))
		}
		if err := checkObservation(obs, m); err != nil {
			t.Fatalf("torn traversal across a block transition: %v", err)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no traversal completed; the oracle is vacuous")
	}

	// The run must actually have exercised blocks, not just the legacy path.
	bs := rw.Engine().Mapping().BlockStatsSnapshot()
	if bs.Builds == 0 {
		t.Fatal("no edge block was ever built; the oracle never covered a block transition")
	}
	if bs.Hits == 0 {
		t.Fatal("no scan was ever served from a block")
	}
	t.Logf("verified %d pinned traversals against %d boundaries across %d block builds (%d hits, %d fallbacks, %d pin-skips)",
		checked, groups, bs.Builds, bs.Hits, bs.Fallbacks, bs.SkippedPins)
}
