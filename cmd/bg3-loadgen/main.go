// Command bg3-loadgen drives one of the Table 1 workloads against an
// in-process BG3 instance and reports throughput — a quick soak/smoke tool
// for the engine.
//
//	bg3-loadgen -workload follow -vertices 50000 -preload 200000 -workers 8 -duration 5s
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	bg3 "bg3"
	"bg3/internal/bytegraph"
	"bg3/internal/graph"
	"bg3/internal/neptunesim"
	"bg3/internal/workload"
)

func main() {
	engineFlag := flag.String("engine", "bg3", "engine: bg3, bytegraph, or neptune")
	workloadFlag := flag.String("workload", "follow", "workload: follow, risk, or recommend")
	vertices := flag.Int("vertices", 20_000, "vertex universe size")
	preload := flag.Int("preload", 100_000, "edges preloaded before measurement")
	workers := flag.Int("workers", 8, "concurrent client goroutines")
	duration := flag.Duration("duration", 3*time.Second, "measurement duration")
	split := flag.Int("forest-split", 512, "forest per-owner split threshold (0 disables)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var gen workload.Generator
	var etype bg3.EdgeType
	switch strings.ToLower(*workloadFlag) {
	case "follow":
		gen = workload.NewDouyinFollow(*vertices, *seed)
		etype = bg3.ETypeFollow
	case "risk":
		gen = workload.NewRiskControl(*vertices, *seed)
		etype = bg3.ETypeTransfer
	case "recommend":
		gen = workload.NewRecommendation(*vertices, *seed)
		etype = bg3.ETypeFollow
	default:
		fmt.Fprintf(os.Stderr, "bg3-loadgen: unknown workload %q\n", *workloadFlag)
		os.Exit(2)
	}

	var store graph.Store
	var db *bg3.DB
	switch strings.ToLower(*engineFlag) {
	case "bg3":
		var err error
		db, err = bg3.Open(&bg3.Options{ForestSplitThreshold: *split})
		if err != nil {
			fmt.Fprintln(os.Stderr, "bg3-loadgen:", err)
			os.Exit(1)
		}
		defer db.Close()
		store = db
	case "bytegraph":
		store = bytegraph.New(bytegraph.Config{})
	case "neptune":
		store = neptunesim.New(neptunesim.Config{})
	default:
		fmt.Fprintf(os.Stderr, "bg3-loadgen: unknown engine %q\n", *engineFlag)
		os.Exit(2)
	}

	fmt.Printf("preloading %d edges over %d vertices...\n", *preload, *vertices)
	start := time.Now()
	if err := workload.Preload(store, workload.PreloadSpec{
		Vertices: *vertices, Edges: *preload, Type: etype, Seed: *seed,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bg3-loadgen: preload:", err)
		os.Exit(1)
	}
	fmt.Printf("preload done in %v\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("running %s with %d workers for %v...\n", gen.Name(), *workers, *duration)
	res := workload.RunFor(store, gen, *workers, *duration, *seed+100)
	fmt.Printf("ops=%d errors=%d elapsed=%v throughput=%.0f ops/s p50=%v p99=%v\n",
		res.Ops, res.Errors, res.Duration.Round(time.Millisecond), res.Throughput,
		res.LatencyP50, res.LatencyP99)

	if db != nil {
		s := db.Stats()
		fmt.Printf("storage: %d reads / %d writes, %.1f MB written, %d trees, %d migrations\n",
			s.Storage.ReadOps, s.Storage.WriteOps, float64(s.Storage.BytesWritten)/(1<<20), s.Forest.Trees, s.Forest.Migrations)
	}
}
