// bg3-benchjson runs the three Table-1 workloads against a fresh DB each
// and writes a machine-readable benchmark trajectory (BENCH_PR8.json):
// throughput, p50/p99 latency, per-read storage fan-out, cache hit ratio,
// allocation cost per op, batch-read/read-ahead effectiveness, and GC write
// amplification. It then runs the write-heavy scenarios on a replicated DB
// with simulated storage write latency — a single-append baseline
// (CommitMaxBatch=1), the same insert stream under group commit, atomic
// batch inserts, and a 50/50 read-write mix — recording group-commit
// coalescing (flushes, mean group size, stall p99) alongside throughput.
// Pipelined variants rerun the single-append, insert, and batch scenarios
// with CommitPipelineDepth=8, recording ack-reorder p99 and mean in-flight
// groups so the commit pipeline's overlap is part of the trajectory. A
// pinned-reader variant reruns the pipelined insert stream with concurrent
// snapshot readers, recording the MVCC interference tax (retained history,
// epoch lag, GC deferrals) next to the same write metrics. The
// full-adjacency-scan pair measures unbounded neighbor scans over a few
// ~100k-degree super-vertices with packed CSR edge blocks on and off —
// the block speedup is their throughput ratio. The sharded-insert series
// runs the same latency-bound insert stream against a hash-partitioned
// shard group at 1, 4, and 16 shards — each shard its own WAL stream and
// group committer — so the per-shard commit-pipeline parallelism shows up
// as near-linear write scaling. The sharded-txn series reruns that stream
// with every batch split across two shards, so each batch pays the 2PC
// prepare/decide round trips; its ratio to sharded-insert at the same
// shard count is the multi-shard transaction premium.
// CI runs it in -short mode and archives the JSON so regressions show up as
// a diffable artifact over time; bg3-benchdiff compares two such files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bg3"
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/replication"
	"bg3/internal/shard"
	"bg3/internal/storage"
	"bg3/internal/workload"
)

type fanoutJSON struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

type workloadJSON struct {
	Name          string     `json:"name"`
	Workers       int        `json:"workers"`
	Ops           int64      `json:"ops"`
	Errors        int64      `json:"errors"`
	DurationMS    int64      `json:"duration_ms"`
	Throughput    float64    `json:"throughput_ops_s"`
	P50US         int64      `json:"p50_us"`
	P99US         int64      `json:"p99_us"`
	ReadFanout    fanoutJSON `json:"read_fanout"`
	CacheHitRatio float64    `json:"cache_hit_ratio"`

	// Allocation cost of the measured phase (runtime.ReadMemStats deltas
	// around workload.Run, divided by completed ops). Heap pressure is the
	// dominant cost on CPU-bound configurations, so it is tracked alongside
	// throughput.
	AllocBytesPerOp float64 `json:"alloc_bytes_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`

	// Read-path I/O effectiveness counters (cumulative over preload + run).
	BatchReads      int64 `json:"batch_reads"`
	BatchRoundTrips int64 `json:"batch_round_trips"`
	CoalescedMisses int64 `json:"coalesced_misses"`
	ReadaheadIssued int64 `json:"readahead_issued"`
	ReadaheadHits   int64 `json:"readahead_hits"`
	CacheShards     int   `json:"cache_shards"`

	GCWriteAmp   float64 `json:"gc_write_amp"`
	GCBytesMoved int64   `json:"gc_bytes_moved"`
	BytesWritten int64   `json:"bytes_written"`
	Trees        int     `json:"trees"`
	Migrations   int     `json:"migrations"`

	// Write-path group-commit effectiveness, measured over the run phase
	// only (flush-counter deltas exclude the preload). Present on the
	// replicated write-heavy scenarios; zero elsewhere.
	GroupFlushes    int64   `json:"group_flushes,omitempty"`
	GroupSizeMean   float64 `json:"group_size_mean,omitempty"`
	GroupStallP99US int64   `json:"group_stall_p99_us,omitempty"`
	WALAppends      int64   `json:"wal_appends,omitempty"`
	CommitMaxBatch  int     `json:"commit_max_batch,omitempty"`

	// Commit-pipeline effectiveness: configured depth, p99 of the in-order
	// ack release wait, and mean concurrently in-flight group appends.
	// Present on the pipelined scenarios; zero elsewhere.
	PipelineDepth   int     `json:"pipeline_depth,omitempty"`
	AckReorderP99US int64   `json:"ack_reorder_p99_us,omitempty"`
	InflightMean    float64 `json:"inflight_mean,omitempty"`

	// MVCC snapshot-read interference: concurrent pinned readers, the
	// snapshots they took, the history those pins forced the Bw-tree to
	// retain, and the extent reclaims GC deferred for them. Present on the
	// pinned-reader scenario; zero elsewhere.
	SnapshotReaders int   `json:"snapshot_readers,omitempty"`
	SnapshotsTaken  int64 `json:"snapshots_taken,omitempty"`
	SnapshotReadOps int64 `json:"snapshot_read_ops,omitempty"`
	ReadEpoch       int64 `json:"read_epoch,omitempty"`
	RetainedBytes   int64 `json:"retained_bytes,omitempty"`
	GCPinDeferred   int64 `json:"gc_pin_deferred,omitempty"`

	// Shard-group scaling: shard count of the partitioned write scenario
	// (each shard has its own WAL stream, group committer, and epoch
	// clock). Present on the sharded-insert series; zero elsewhere.
	Shards int `json:"shards,omitempty"`

	// Packed edge-block effectiveness: blocks built, scans served from a
	// block vs forced to the merged delta path, and the per-super-vertex
	// degree the scenario loaded. Present on the full-adjacency-scan
	// scenarios; zero elsewhere.
	BlockBuilds    int64 `json:"block_builds,omitempty"`
	BlockHits      int64 `json:"block_hits,omitempty"`
	BlockFallbacks int64 `json:"block_fallbacks,omitempty"`
	BlockBytes     int64 `json:"block_bytes,omitempty"`
	SuperDegree    int   `json:"super_degree,omitempty"`
}

type benchJSON struct {
	Schema       string         `json:"schema"`
	Short        bool           `json:"short"`
	Workers      int            `json:"workers"`
	OpsPerW      int            `json:"ops_per_worker"`
	WriteWorkers int            `json:"write_workers,omitempty"`
	WriteOpsPerW int            `json:"write_ops_per_worker,omitempty"`
	GoVersion    string         `json:"go_version"`
	Workloads    []workloadJSON `json:"workloads"`
}

func main() {
	out := flag.String("out", "BENCH_PR9.json", "output JSON path")
	short := flag.Bool("short", false, "reduced scale for CI")
	workers := flag.Int("workers", 4, "concurrent clients per workload")
	ops := flag.Int("ops", 0, "operations per worker (0: 2000, or 400 with -short)")
	writeWorkers := flag.Int("write-workers", 32, "concurrent writers in the write-heavy scenarios")
	writeOps := flag.Int("write-ops", 0, "write-scenario ops per worker (0: 250, or 60 with -short)")
	seed := flag.Int64("seed", 1, "base RNG seed")
	flag.Parse()

	opsPerWorker := *ops
	if opsPerWorker <= 0 {
		opsPerWorker = 2000
		if *short {
			opsPerWorker = 400
		}
	}
	writeOpsPerWorker := *writeOps
	if writeOpsPerWorker <= 0 {
		writeOpsPerWorker = 250
		if *short {
			writeOpsPerWorker = 60
		}
	}
	vertices, edges := 20000, 60000
	if *short {
		vertices, edges = 4000, 12000
	}

	report := benchJSON{
		Schema:       "bg3.bench/v2",
		Short:        *short,
		Workers:      *workers,
		OpsPerW:      opsPerWorker,
		WriteWorkers: *writeWorkers,
		WriteOpsPerW: writeOpsPerWorker,
		GoVersion:    runtime.Version(),
	}

	type spec struct {
		gen   workload.Generator
		etype graph.EdgeType
		ttl   time.Duration
	}
	specs := []spec{
		{workload.NewDouyinFollow(vertices, *seed), graph.ETypeFollow, 0},
		{workload.NewRiskControl(vertices, *seed), graph.ETypeTransfer, 0},
		{workload.NewRecommendation(vertices, *seed), graph.ETypeFollow, 0},
	}
	for _, sp := range specs {
		w, err := runOne(sp.gen, sp.etype, sp.ttl, vertices, edges, *workers, opsPerWorker, *seed)
		if err != nil {
			log.Fatalf("%s: %v", sp.gen.Name(), err)
		}
		report.Workloads = append(report.Workloads, w)
		fmt.Printf("%-24s %8.0f ops/s  p50=%dus p99=%dus  fanout(p99)=%d  hit=%.2f  alloc=%.0fB/op  amp=%.2f\n",
			w.Name, w.Throughput, w.P50US, w.P99US, w.ReadFanout.P99, w.CacheHitRatio, w.AllocBytesPerOp, w.GCWriteAmp)
	}

	// Full-adjacency-scan pair: unbounded neighbor scans over a few very
	// high degree super-vertices, once with packed CSR edge blocks (the
	// default) and once with them disabled (the PR 7 merged-leaf path).
	// Scan ops are orders of magnitude heavier than point reads, so the
	// scenario runs fewer of them.
	scanWorkers := 4
	scanOps, supers, superDegree := 120, 2, 100000
	if *short {
		scanOps, superDegree = 40, 8000
	}
	var scanBlocks float64
	for _, sc := range []struct {
		name   string
		blocks bool
	}{
		{"full-adjacency-scan", true},
		{"full-adjacency-scan-noblocks", false},
	} {
		w, err := runScan(sc.name, sc.blocks, vertices, supers, superDegree, scanWorkers, scanOps, *seed)
		if err != nil {
			log.Fatalf("%s: %v", sc.name, err)
		}
		report.Workloads = append(report.Workloads, w)
		fmt.Printf("%-28s %8.0f ops/s  p50=%dus p99=%dus  blocks=%d hits=%d fallbacks=%d\n",
			w.Name, w.Throughput, w.P50US, w.P99US, w.BlockBuilds, w.BlockHits, w.BlockFallbacks)
		if sc.blocks {
			scanBlocks = w.Throughput
		} else if w.Throughput > 0 {
			fmt.Printf("%-28s %8.2fx with edge blocks\n", "", scanBlocks/w.Throughput)
		}
	}

	// Write-heavy scenarios: a replicated DB with simulated storage write
	// latency, so every acked write pays a WAL round trip and coalescing is
	// what throughput is made of. The baseline pins CommitMaxBatch=1 (one
	// record per flush — classic append-per-write); the remaining scenarios
	// use the default group commit and must beat it by amortization alone.
	type writeSpec struct {
		name     string
		gen      workload.Generator
		maxBatch int // 0: default group commit
		depth    int // 0: serial appends; >1: commit pipelining
		readers  int // >0: concurrent snapshot-pinned traversal readers
	}
	writeSpecs := []writeSpec{
		{"single-append-baseline", workload.NewInsertOnly(vertices, *seed), 1, 0, 0},
		{"insert-only-grouped", workload.NewInsertOnly(vertices, *seed), 0, 0, 0},
		{"batch-insert", workload.NewBatchInsert(vertices, 16, *seed), 0, 0, 0},
		{"mixed-50-50", workload.NewMixedReadWrite(vertices, *seed), 0, 0, 0},
		{"single-append-pipelined", workload.NewInsertOnly(vertices, *seed), 1, 8, 0},
		{"insert-only-pipelined", workload.NewInsertOnly(vertices, *seed), 0, 8, 0},
		{"batch-insert-pipelined", workload.NewBatchInsert(vertices, 16, *seed), 0, 8, 0},
		// Same write stream as insert-only-pipelined, but with snapshot
		// readers continuously pinning epochs and traversing: the pair
		// quantifies the MVCC interference tax (delta history retained for
		// pins, epoch lag, and any write-throughput cost).
		{"insert-only-pinned-readers", workload.NewInsertOnly(vertices, *seed), 0, 8, 4},
	}
	var baseline float64
	var baselineP50 int64
	for _, sp := range writeSpecs {
		w, err := runWrite(sp.name, sp.gen, sp.maxBatch, sp.depth, sp.readers, vertices, *writeWorkers, writeOpsPerWorker, *seed)
		if err != nil {
			log.Fatalf("%s: %v", sp.name, err)
		}
		report.Workloads = append(report.Workloads, w)
		fmt.Printf("%-24s %8.0f ops/s  p50=%dus p99=%dus  groups=%d mean=%.1f stall(p99)=%dus\n",
			w.Name, w.Throughput, w.P50US, w.P99US, w.GroupFlushes, w.GroupSizeMean, w.GroupStallP99US)
		if sp.depth > 1 {
			fmt.Printf("%-24s          depth=%d inflight(mean)=%.2f ack-reorder(p99)=%dus\n",
				"", w.PipelineDepth, w.InflightMean, w.AckReorderP99US)
		}
		if sp.readers > 0 {
			fmt.Printf("%-24s          readers=%d snapshots=%d reads=%d retained(max)=%dB epoch=%d\n",
				"", w.SnapshotReaders, w.SnapshotsTaken, w.SnapshotReadOps, w.RetainedBytes, w.ReadEpoch)
		}
		if sp.name == "single-append-baseline" {
			baseline = w.Throughput
			baselineP50 = w.P50US
		} else if baseline > 0 {
			fmt.Printf("%-24s %8.2fx vs single-append baseline", "", w.Throughput/baseline)
			if sp.name == "single-append-pipelined" && w.P50US > 0 {
				fmt.Printf("  (p50 %.2fx lower)", float64(baselineP50)/float64(w.P50US))
			}
			fmt.Println()
		}
	}

	// Shard-group write scaling: the same latency-bound insert stream
	// against 1, 4, and 16 shards. Throughput is commit-round-trip bound
	// (500us simulated append latency), so the scaling factor measures how
	// well the partitioned WAL streams and per-shard committers overlap.
	var shardBase float64
	insertThr := make(map[int]float64)
	for _, n := range []int{1, 4, 16} {
		w, err := runSharded(n, *writeWorkers*2, writeOpsPerWorker, *seed)
		if err != nil {
			log.Fatalf("sharded-insert-%d: %v", n, err)
		}
		report.Workloads = append(report.Workloads, w)
		insertThr[n] = w.Throughput
		fmt.Printf("%-24s %8.0f ops/s  p50=%dus p99=%dus\n",
			w.Name, w.Throughput, w.P50US, w.P99US)
		if n == 1 {
			shardBase = w.Throughput
		} else if shardBase > 0 {
			fmt.Printf("%-24s %8.2fx vs 1 shard\n", "", w.Throughput/shardBase)
		}
	}

	// Cross-shard transaction premium: the same latency-bound stream but
	// with every batch split across two shards, so each one runs the 2PC
	// path (parallel prepares + one commit decision + parallel applies)
	// instead of one shard's plain group-commit. At 1 shard the batch is
	// single-shard by construction and takes the fast path — that ratio
	// isolates what the prepare/decide round trips cost.
	for _, n := range []int{1, 4, 16} {
		w, err := runShardedTxn(n, *writeWorkers*2, writeOpsPerWorker, *seed)
		if err != nil {
			log.Fatalf("sharded-txn-%d: %v", n, err)
		}
		report.Workloads = append(report.Workloads, w)
		fmt.Printf("%-24s %8.0f ops/s  p50=%dus p99=%dus\n",
			w.Name, w.Throughput, w.P50US, w.P99US)
		if base := insertThr[n]; base > 0 && n > 1 {
			fmt.Printf("%-24s %8.2fx vs sharded-insert-%d (multi-shard txn premium)\n",
				"", w.Throughput/base, n)
		}
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// runWrite measures a write-heavy workload on a fresh replicated database
// whose storage charges a per-append write latency. Group-commit counters
// are taken as deltas around the measured phase so the parallel preload's
// flushes don't pollute the coalescing numbers. With readers > 0, that many
// goroutines continuously open snapshots and traverse the preloaded graph
// through them for the whole measured phase, so the write numbers include
// the cost of pinned epochs (retained delta history, epoch-floor checks).
func runWrite(name string, gen workload.Generator, maxBatch, depth, readers, vertices, workers, opsPerWorker int, seed int64) (workloadJSON, error) {
	db, err := bg3.Open(&bg3.Options{
		Replicated:          true,
		StorageWriteLatency: 500 * time.Microsecond,
		CommitMaxBatch:      maxBatch,
		CommitPipelineDepth: depth,
	})
	if err != nil {
		return workloadJSON{}, err
	}
	defer db.Close()

	// A small seed graph gives the mixed scenario's reads something to scan;
	// parallel loaders keep its wall-clock off the serial round-trip cliff.
	if err := workload.PreloadParallel(db, workload.PreloadSpec{
		Vertices: vertices, Edges: vertices / 4, Type: graph.ETypeFollow, Seed: seed,
	}, workers); err != nil {
		return workloadJSON{}, err
	}

	var (
		stop          = make(chan struct{})
		readerWG      sync.WaitGroup
		snapsTaken    atomic.Int64
		snapReads     atomic.Int64
		retainedMax   atomic.Int64
		snapReadLimit = 32
	)
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rng := rand.New(rand.NewSource(seed + 1000 + int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := db.Snapshot()
				snapsTaken.Add(1)
				for i := 0; i < 16; i++ {
					src := bg3.VertexID(rng.Intn(vertices))
					_ = s.Neighbors(src, graph.ETypeFollow, snapReadLimit,
						func(bg3.VertexID, bg3.Properties) bool { return true })
					snapReads.Add(1)
				}
				// Sample the retention cost while the pin is live; it is
				// zero once every snapshot closes.
				if snapsTaken.Load()%32 == 0 {
					if rb := db.Stats().MVCC.RetainedBytes; rb > retainedMax.Load() {
						retainedMax.Store(rb)
					}
				}
				s.Close()
			}
		}(r)
	}

	before := db.Stats()
	res := workload.Run(db, gen, workers, opsPerWorker, seed+200)
	close(stop)
	readerWG.Wait()
	after := db.Stats()

	w := workloadJSON{
		Name:            name,
		Workers:         workers,
		Ops:             res.Ops,
		Errors:          res.Errors,
		DurationMS:      res.Duration.Milliseconds(),
		Throughput:      res.Throughput,
		P50US:           res.LatencyP50.Microseconds(),
		P99US:           res.LatencyP99.Microseconds(),
		CacheHitRatio:   after.Cache.HitRatio,
		BytesWritten:    after.Storage.BytesWritten,
		GroupFlushes:    after.WAL.GroupSize.Count - before.WAL.GroupSize.Count,
		GroupStallP99US: after.WAL.GroupStall.P99US,
		WALAppends:      after.WAL.Appends - before.WAL.Appends,
		CommitMaxBatch:  maxBatch,
	}
	if w.GroupFlushes > 0 {
		w.GroupSizeMean = float64(after.WAL.CommitRecords-before.WAL.CommitRecords) / float64(w.GroupFlushes)
	}
	if depth > 1 {
		w.PipelineDepth = after.WAL.PipelineDepth
		w.AckReorderP99US = after.WAL.AckReorder.P99US
		w.InflightMean = after.WAL.PipelineUtilization.Mean
	}
	if readers > 0 {
		w.SnapshotReaders = readers
		w.SnapshotsTaken = snapsTaken.Load()
		w.SnapshotReadOps = snapReads.Load()
		w.ReadEpoch = int64(after.MVCC.ReadEpoch)
		w.RetainedBytes = retainedMax.Load()
		w.GCPinDeferred = after.GC.PinDeferred - before.GC.PinDeferred
	}
	return w, nil
}

// runSharded measures the partitioned-forest write path: `workers`
// writers stream single-shard edge batches into a shard group whose
// storage charges the same 500us append latency as the replicated
// write scenarios. Every batch pays a commit round trip on its owner
// shard, so aggregate throughput is bounded by how many WAL streams can
// be in a commit round trip at once — the quantity sharding multiplies.
func runSharded(shards, workers, opsPerWorker int, seed int64) (workloadJSON, error) {
	const batchSize = 8
	g, err := shard.Open(shards,
		&storage.Options{ExtentSize: 256 << 10, WriteLatency: 500 * time.Microsecond},
		replication.RWOptions{
			Engine:        core.Options{},
			CommitWindow:  200 * time.Microsecond,
			MaxBatch:      8,
			PipelineDepth: 8,
		})
	if err != nil {
		return workloadJSON{}, err
	}
	defer g.Close()

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    []time.Duration
		ops     atomic.Int64
		errs    atomic.Int64
		started = time.Now()
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			src := graph.VertexID(w + 1)
			local := make([]time.Duration, 0, opsPerWorker)
			for n := 0; n < opsPerWorker; n++ {
				muts := make([]graph.Mutation, 0, batchSize)
				for d := 0; d < batchSize; d++ {
					muts = append(muts, graph.AddEdgeMut(graph.Edge{
						Src: src, Dst: graph.VertexID(1_000_000 + n*batchSize + d),
						Type:  graph.ETypeFollow,
						Props: graph.Properties{{Name: "w", Value: []byte{byte(n)}}},
					}))
				}
				t0 := time.Now()
				if err := g.ApplyBatch(muts); err != nil {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
				ops.Add(1)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	w := workloadJSON{
		Name:       fmt.Sprintf("sharded-insert-%d", shards),
		Workers:    workers,
		Ops:        ops.Load(),
		Errors:     errs.Load(),
		DurationMS: elapsed.Milliseconds(),
		P50US:      pct(0.50).Microseconds(),
		P99US:      pct(0.99).Microseconds(),
		Shards:     shards,
	}
	if elapsed > 0 {
		w.Throughput = float64(ops.Load()) / elapsed.Seconds()
	}
	return w, nil
}

// runShardedTxn measures the cross-shard transaction path: the same
// latency-bound insert stream as runSharded, but each batch's edges come
// from two source vertices on different shards (when shards > 1), so
// every batch is a two-participant 2PC — prepare intents on both WAL
// streams, the commit decision on the coordinator's, then the applies.
// At shards == 1 both sources land on the one shard and the batch takes
// the single-shard fast path, making that run the no-premium baseline.
func runShardedTxn(shards, workers, opsPerWorker int, seed int64) (workloadJSON, error) {
	const batchSize = 8
	g, err := shard.Open(shards,
		&storage.Options{ExtentSize: 256 << 10, WriteLatency: 500 * time.Microsecond},
		replication.RWOptions{
			Engine:        core.Options{},
			CommitWindow:  200 * time.Microsecond,
			MaxBatch:      8,
			PipelineDepth: 8,
		})
	if err != nil {
		return workloadJSON{}, err
	}
	defer g.Close()

	// Per-writer source pair on two different shards (any pair works at
	// one shard — everything is shard 0).
	r := g.Router()
	srcA := make([]graph.VertexID, workers)
	srcB := make([]graph.VertexID, workers)
	for w := 0; w < workers; w++ {
		srcA[w] = graph.VertexID(1000*w + 1)
		srcB[w] = srcA[w] + 1
		if shards > 1 {
			for id := srcA[w] + 1; ; id++ {
				if r.Owner(id) != r.Owner(srcA[w]) {
					srcB[w] = id
					break
				}
			}
		}
	}

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		lats    []time.Duration
		ops     atomic.Int64
		errs    atomic.Int64
		started = time.Now()
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]time.Duration, 0, opsPerWorker)
			for n := 0; n < opsPerWorker; n++ {
				muts := make([]graph.Mutation, 0, batchSize)
				for d := 0; d < batchSize; d++ {
					src := srcA[w]
					if d%2 == 1 {
						src = srcB[w]
					}
					muts = append(muts, graph.AddEdgeMut(graph.Edge{
						Src: src, Dst: graph.VertexID(1_000_000 + n*batchSize + d),
						Type:  graph.ETypeFollow,
						Props: graph.Properties{{Name: "w", Value: []byte{byte(n)}}},
					}))
				}
				t0 := time.Now()
				if err := g.ApplyBatch(muts); err != nil {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
				ops.Add(1)
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(started)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	w := workloadJSON{
		Name:       fmt.Sprintf("sharded-txn-%d", shards),
		Workers:    workers,
		Ops:        ops.Load(),
		Errors:     errs.Load(),
		DurationMS: elapsed.Milliseconds(),
		P50US:      pct(0.50).Microseconds(),
		P99US:      pct(0.99).Microseconds(),
		Shards:     shards,
	}
	if elapsed > 0 {
		w.Throughput = float64(ops.Load()) / elapsed.Seconds()
	}
	return w, nil
}

// runScan measures the full-adjacency-scan workload: a zipfian base graph
// plus `supers` designated super-vertices (IDs 1..supers) loaded with
// superDegree edges each, scanned unbounded. With blocks enabled the
// super-vertex adjacencies are packed into CSR edge blocks before the
// measured phase (as a post-bulk-load deployment would); with them
// disabled every scan walks the merged Bw-tree leaf path. The modest page
// cache holds the ordinary vertices but not a super-vertex's hundreds of
// leaf pages — exactly the regime the blocks exist for.
func runScan(name string, blocks bool, vertices, supers, superDegree, workers, opsPerWorker int, seed int64) (workloadJSON, error) {
	threshold := 0 // default: enabled at 1024 entries
	if !blocks {
		threshold = -1
	}
	db, err := bg3.Open(&bg3.Options{
		ForestSplitThreshold: 64,
		CacheCapacity:        256,
		EdgeBlockThreshold:   threshold,
	})
	if err != nil {
		return workloadJSON{}, err
	}
	defer db.Close()

	if err := workload.Preload(db, workload.PreloadSpec{
		Vertices: vertices, Edges: vertices, Type: graph.ETypeFollow, Seed: seed,
	}); err != nil {
		return workloadJSON{}, err
	}
	// Bulk-load the super-vertex adjacencies in mutation batches.
	const chunk = 1024
	for s := 1; s <= supers; s++ {
		src := bg3.VertexID(s)
		for lo := 0; lo < superDegree; lo += chunk {
			hi := lo + chunk
			if hi > superDegree {
				hi = superDegree
			}
			muts := make([]bg3.Mutation, 0, hi-lo)
			for d := lo; d < hi; d++ {
				muts = append(muts, bg3.AddEdgeMut(bg3.Edge{
					Src: src, Dst: bg3.VertexID(vertices + d), Type: graph.ETypeFollow,
					Props: bg3.Properties{{Name: "ts", Value: []byte{0, 0, 0, 0}}},
				}))
			}
			if err := db.ApplyBatch(muts); err != nil {
				return workloadJSON{}, err
			}
		}
	}
	if blocks {
		if _, err := db.BuildEdgeBlocks(); err != nil {
			return workloadJSON{}, err
		}
	}

	gen := workload.NewFullAdjacencyScan(vertices, supers, seed)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := workload.Run(db, gen, workers, opsPerWorker, seed+300)
	runtime.ReadMemStats(&after)

	s := db.Stats()
	var allocBytes, allocs float64
	if res.Ops > 0 {
		allocBytes = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Ops)
		allocs = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
	}
	return workloadJSON{
		Name:            name,
		Workers:         workers,
		Ops:             res.Ops,
		Errors:          res.Errors,
		DurationMS:      res.Duration.Milliseconds(),
		Throughput:      res.Throughput,
		P50US:           res.LatencyP50.Microseconds(),
		P99US:           res.LatencyP99.Microseconds(),
		CacheHitRatio:   s.Cache.HitRatio,
		AllocBytesPerOp: allocBytes,
		AllocsPerOp:     allocs,
		BytesWritten:    s.Storage.BytesWritten,
		Trees:           s.Forest.Trees,
		Migrations:      s.Forest.Migrations,
		BlockBuilds:     s.EdgeBlocks.Builds,
		BlockHits:       s.EdgeBlocks.Hits,
		BlockFallbacks:  s.EdgeBlocks.Fallbacks,
		BlockBytes:      s.EdgeBlocks.Bytes,
		SuperDegree:     superDegree,
	}, nil
}

// runOne measures a workload on a fresh database. A deliberately small page
// cache forces cold reads so the read fan-out histogram reflects storage
// I/O rather than pure memory hits.
func runOne(gen workload.Generator, etype graph.EdgeType, ttl time.Duration, vertices, edges, workers, opsPerWorker int, seed int64) (workloadJSON, error) {
	db, err := bg3.Open(&bg3.Options{
		ForestSplitThreshold: 64,
		CacheCapacity:        32,
		TTL:                  ttl,
	})
	if err != nil {
		return workloadJSON{}, err
	}
	defer db.Close()

	if err := workload.Preload(db, workload.PreloadSpec{
		Vertices: vertices, Edges: edges, Type: etype, Seed: seed,
	}); err != nil {
		return workloadJSON{}, err
	}

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res := workload.Run(db, gen, workers, opsPerWorker, seed+100)
	runtime.ReadMemStats(&after)
	if _, err := db.RunGC(8); err != nil {
		return workloadJSON{}, err
	}

	s := db.Stats()
	var allocBytes, allocs float64
	if res.Ops > 0 {
		// TotalAlloc/Mallocs are monotonic, so the deltas bracket exactly
		// the measured phase without needing a forced GC.
		allocBytes = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Ops)
		allocs = float64(after.Mallocs-before.Mallocs) / float64(res.Ops)
	}
	return workloadJSON{
		Name:       res.Workload,
		Workers:    workers,
		Ops:        res.Ops,
		Errors:     res.Errors,
		DurationMS: res.Duration.Milliseconds(),
		Throughput: res.Throughput,
		P50US:      res.LatencyP50.Microseconds(),
		P99US:      res.LatencyP99.Microseconds(),
		ReadFanout: fanoutJSON{
			Count: s.Cache.ReadFanout.Count,
			Mean:  s.Cache.ReadFanout.Mean,
			P50:   s.Cache.ReadFanout.P50,
			P99:   s.Cache.ReadFanout.P99,
			Max:   s.Cache.ReadFanout.Max,
		},
		CacheHitRatio:   s.Cache.HitRatio,
		AllocBytesPerOp: allocBytes,
		AllocsPerOp:     allocs,
		BatchReads:      s.Storage.BatchReads,
		BatchRoundTrips: s.Storage.BatchRoundTrips,
		CoalescedMisses: s.Cache.CoalescedMisses,
		ReadaheadIssued: s.Cache.ReadaheadIssued,
		ReadaheadHits:   s.Cache.ReadaheadHits,
		CacheShards:     s.Cache.Shards,
		GCWriteAmp:      s.GC.WriteAmp,
		GCBytesMoved:    s.GC.BytesMoved,
		BytesWritten:    s.Storage.BytesWritten,
		Trees:           s.Forest.Trees,
		Migrations:      s.Forest.Migrations,
	}, nil
}
