// bg3-benchdiff compares two bg3-benchjson output files and prints a
// per-workload delta table: throughput, tail latency, cache hit ratio, and
// allocation cost. It exits non-zero when any workload's throughput regressed
// by more than -max-regress (default 20%), so CI can gate on it; pass
// -report-only to always exit zero (used while baselines and candidates are
// produced at different scales, e.g. a full-scale checked-in baseline vs a
// -short CI run).
//
// Usage:
//
//	bg3-benchdiff [flags] OLD.json NEW.json
//
// Both bg3.bench/v1 and /v2 files are accepted; v2-only fields read as zero
// from v1 baselines and their rows are marked "n/a".
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type fanoutJSON struct {
	P99 int64 `json:"p99"`
}

type workloadJSON struct {
	Name            string     `json:"name"`
	Ops             int64      `json:"ops"`
	Throughput      float64    `json:"throughput_ops_s"`
	P50US           int64      `json:"p50_us"`
	P99US           int64      `json:"p99_us"`
	ReadFanout      fanoutJSON `json:"read_fanout"`
	CacheHitRatio   float64    `json:"cache_hit_ratio"`
	AllocBytesPerOp float64    `json:"alloc_bytes_per_op"`
}

type benchJSON struct {
	Schema    string         `json:"schema"`
	Short     bool           `json:"short"`
	Workers   int            `json:"workers"`
	OpsPerW   int            `json:"ops_per_worker"`
	Workloads []workloadJSON `json:"workloads"`
}

func load(path string) (benchJSON, error) {
	var b benchJSON
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(buf, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Workloads) == 0 {
		return b, fmt.Errorf("%s: no workloads (schema %q)", path, b.Schema)
	}
	return b, nil
}

func pct(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

func main() {
	maxRegress := flag.Float64("max-regress", 0.20,
		"fail when any workload's throughput drops by more than this fraction")
	reportOnly := flag.Bool("report-only", false,
		"print the comparison but always exit zero")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: bg3-benchdiff [flags] OLD.json NEW.json\n")
		os.Exit(2)
	}

	oldB, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newB, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	oldByName := make(map[string]workloadJSON, len(oldB.Workloads))
	for _, w := range oldB.Workloads {
		oldByName[w.Name] = w
	}

	sameScale := oldB.Short == newB.Short && oldB.Workers == newB.Workers && oldB.OpsPerW == newB.OpsPerW
	fmt.Printf("baseline:  %s (schema %s, workers=%d ops/worker=%d short=%v)\n",
		flag.Arg(0), oldB.Schema, oldB.Workers, oldB.OpsPerW, oldB.Short)
	fmt.Printf("candidate: %s (schema %s, workers=%d ops/worker=%d short=%v)\n",
		flag.Arg(1), newB.Schema, newB.Workers, newB.OpsPerW, newB.Short)
	if !sameScale {
		fmt.Printf("note: runs use different scales; deltas are indicative only\n")
	}
	fmt.Println()

	fmt.Printf("%-24s %22s %18s %14s %16s\n",
		"workload", "throughput (ops/s)", "p99 (us)", "hit ratio", "alloc (B/op)")
	failed := false
	for _, nw := range newB.Workloads {
		ow, ok := oldByName[nw.Name]
		if !ok {
			fmt.Printf("%-24s %22s (new workload, no baseline)\n", nw.Name, fmtF(nw.Throughput))
			continue
		}
		tPct := pct(ow.Throughput, nw.Throughput)
		pPct := pct(float64(ow.P99US), float64(nw.P99US))
		hitDelta := nw.CacheHitRatio - ow.CacheHitRatio
		alloc := "n/a"
		if ow.AllocBytesPerOp > 0 && nw.AllocBytesPerOp > 0 {
			alloc = fmt.Sprintf("%.0f (%+.1f%%)", nw.AllocBytesPerOp, pct(ow.AllocBytesPerOp, nw.AllocBytesPerOp))
		} else if nw.AllocBytesPerOp > 0 {
			alloc = fmt.Sprintf("%.0f", nw.AllocBytesPerOp)
		}
		fmt.Printf("%-24s %10s (%+6.1f%%) %8d (%+6.1f%%) %6.2f (%+.2f) %16s\n",
			nw.Name, fmtF(nw.Throughput), tPct, nw.P99US, pPct, nw.CacheHitRatio, hitDelta, alloc)
		if tPct < -*maxRegress*100 {
			failed = true
			fmt.Printf("  ^ REGRESSION: throughput down %.1f%% (limit %.0f%%)\n", -tPct, *maxRegress*100)
		}
	}

	for _, ow := range oldB.Workloads {
		found := false
		for _, nw := range newB.Workloads {
			if nw.Name == ow.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-24s missing from candidate (baseline %.0f ops/s)\n", ow.Name, ow.Throughput)
			failed = true
		}
	}

	if failed {
		if *reportOnly {
			fmt.Println("\nregressions detected (report-only: exiting 0)")
			return
		}
		fmt.Println("\nFAIL: throughput regression beyond limit")
		os.Exit(1)
	}
	fmt.Println("\nOK: no throughput regression beyond limit")
}

func fmtF(v float64) string {
	return fmt.Sprintf("%.0f", v)
}
