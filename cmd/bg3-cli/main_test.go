package main

import (
	"strings"
	"testing"

	bg3 "bg3"
)

func newDB(t *testing.T) *bg3.DB {
	t.Helper()
	db, err := bg3.Open(nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func run(t *testing.T, db *bg3.DB, line string) error {
	t.Helper()
	return dispatch(db, strings.Fields(line))
}

func TestDispatchAddAndGet(t *testing.T) {
	db := newDB(t)
	for _, cmd := range []string{
		"addv 1 user",
		"addv 2 video",
		"adde 1 2 like ts=123",
		"adde 1 3 like",
		"get 1 2 like",
		"neighbors 1 like",
		"neighbors 1 like 1",
		"degree 1 like",
		"khop 1 like 2",
		"gc 2",
		"stats",
	} {
		if err := run(t, db, cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
	if deg, _ := db.Degree(1, bg3.ETypeLike); deg != 2 {
		t.Fatalf("degree = %d, want 2", deg)
	}
	if err := run(t, db, "dele 1 2 like"); err != nil {
		t.Fatal(err)
	}
	if deg, _ := db.Degree(1, bg3.ETypeLike); deg != 1 {
		t.Fatalf("degree after dele = %d", deg)
	}
}

func TestDispatchCycles(t *testing.T) {
	db := newDB(t)
	for _, cmd := range []string{
		"adde 1 2 transfer",
		"adde 2 1 transfer",
		"cycles 1 transfer 3",
	} {
		if err := run(t, db, cmd); err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
	}
}

func TestDispatchNumericEdgeType(t *testing.T) {
	db := newDB(t)
	if err := run(t, db, "adde 1 2 7"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.GetEdge(1, bg3.EdgeType(7), 2); !ok {
		t.Fatal("numeric edge type not stored")
	}
}

func TestDispatchErrors(t *testing.T) {
	db := newDB(t)
	bad := []string{
		"addv",                // missing args
		"addv 1 alien",        // unknown vertex type
		"adde 1 2",            // missing type
		"adde 1 2 nosuchtype", // unknown edge type
		"adde 1 2 like ts",    // malformed property
		"neighbors 1",         // missing type
		"frobnicate",          // unknown command
	}
	for _, cmd := range bad {
		if err := run(t, db, cmd); err == nil {
			t.Fatalf("%q succeeded, want error", cmd)
		}
	}
	if err := run(t, db, "help"); err != nil {
		t.Fatal(err)
	}
	if err := run(t, db, "quit"); err != errQuit {
		t.Fatalf("quit = %v, want errQuit", err)
	}
}
