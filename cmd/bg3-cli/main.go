// Command bg3-cli is a small interactive shell over an in-process BG3
// database — handy for poking at the engine's behaviour.
//
//	$ bg3-cli
//	bg3> addv 1 user
//	bg3> adde 1 2 follow
//	bg3> neighbors 1 follow
//	2
//	bg3> khop 1 follow 2
//	...
//	bg3> stats
//	bg3> quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	bg3 "bg3"
)

var edgeTypes = map[string]bg3.EdgeType{
	"follow":   bg3.ETypeFollow,
	"like":     bg3.ETypeLike,
	"transfer": bg3.ETypeTransfer,
}

var vertexTypes = map[string]bg3.VertexType{
	"user":  bg3.VTypeUser,
	"video": bg3.VTypeVideo,
}

func main() {
	replicated := flag.Bool("replicated", false,
		"open with the WAL replication pipeline (enables the 'failover' command)")
	flag.Parse()

	db, err := bg3.Open(&bg3.Options{ForestSplitThreshold: 1000, Replicated: *replicated})
	if err != nil {
		fmt.Fprintln(os.Stderr, "bg3-cli:", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Println("BG3 interactive shell — type 'help' for commands")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("bg3> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := dispatch(db, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Println("error:", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func parseID(s string) (bg3.VertexID, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	return bg3.VertexID(v), err
}

func parseEdgeType(s string) (bg3.EdgeType, error) {
	if t, ok := edgeTypes[strings.ToLower(s)]; ok {
		return t, nil
	}
	v, err := strconv.ParseUint(s, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("unknown edge type %q (follow, like, transfer, or a number)", s)
	}
	return bg3.EdgeType(v), nil
}

func dispatch(db *bg3.DB, f []string) error {
	switch strings.ToLower(f[0]) {
	case "quit", "exit":
		return errQuit
	case "help":
		fmt.Print(`commands:
  addv <id> <user|video>                add a vertex
  adde <src> <dst> <etype> [k=v ...]    add an edge with properties
  dele <src> <dst> <etype>              delete an edge
  get  <src> <dst> <etype>              show one edge
  neighbors <src> <etype> [limit]       list out-neighbors
  degree <src> <etype>                  out-degree
  khop <src> <etype> <hops>             multi-hop expansion
  cycles <src> <etype> <maxlen>         loop detection
  gc [batch]                            run space reclamation
  failover                              depose the leader, promote a follower (needs -replicated)
  stats [json|text]                     engine statistics (full registry as json/text)
  quit
`)
		return nil
	case "addv":
		if len(f) < 3 {
			return fmt.Errorf("usage: addv <id> <user|video>")
		}
		id, err := parseID(f[1])
		if err != nil {
			return err
		}
		typ, ok := vertexTypes[strings.ToLower(f[2])]
		if !ok {
			return fmt.Errorf("unknown vertex type %q", f[2])
		}
		return db.AddVertex(bg3.Vertex{ID: id, Type: typ})
	case "adde":
		if len(f) < 4 {
			return fmt.Errorf("usage: adde <src> <dst> <etype> [k=v ...]")
		}
		src, err := parseID(f[1])
		if err != nil {
			return err
		}
		dst, err := parseID(f[2])
		if err != nil {
			return err
		}
		typ, err := parseEdgeType(f[3])
		if err != nil {
			return err
		}
		var props bg3.Properties
		for _, kv := range f[4:] {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				return fmt.Errorf("property %q is not k=v", kv)
			}
			props = append(props, bg3.Property{Name: parts[0], Value: []byte(parts[1])})
		}
		return db.AddEdge(bg3.Edge{Src: src, Dst: dst, Type: typ, Props: props})
	case "dele":
		if len(f) < 4 {
			return fmt.Errorf("usage: dele <src> <dst> <etype>")
		}
		src, _ := parseID(f[1])
		dst, _ := parseID(f[2])
		typ, err := parseEdgeType(f[3])
		if err != nil {
			return err
		}
		return db.DeleteEdge(src, typ, dst)
	case "get":
		if len(f) < 4 {
			return fmt.Errorf("usage: get <src> <dst> <etype>")
		}
		src, _ := parseID(f[1])
		dst, _ := parseID(f[2])
		typ, err := parseEdgeType(f[3])
		if err != nil {
			return err
		}
		e, ok, err := db.GetEdge(src, typ, dst)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Println("(not found)")
			return nil
		}
		fmt.Printf("%d -> %d", e.Src, e.Dst)
		for _, p := range e.Props {
			fmt.Printf(" %s=%s", p.Name, p.Value)
		}
		fmt.Println()
		return nil
	case "neighbors":
		if len(f) < 3 {
			return fmt.Errorf("usage: neighbors <src> <etype> [limit]")
		}
		src, _ := parseID(f[1])
		typ, err := parseEdgeType(f[2])
		if err != nil {
			return err
		}
		limit := 0
		if len(f) > 3 {
			limit, _ = strconv.Atoi(f[3])
		}
		n := 0
		err = db.Neighbors(src, typ, limit, func(dst bg3.VertexID, _ bg3.Properties) bool {
			fmt.Println(dst)
			n++
			return true
		})
		fmt.Printf("(%d neighbors)\n", n)
		return err
	case "degree":
		if len(f) < 3 {
			return fmt.Errorf("usage: degree <src> <etype>")
		}
		src, _ := parseID(f[1])
		typ, err := parseEdgeType(f[2])
		if err != nil {
			return err
		}
		d, err := db.Degree(src, typ)
		if err != nil {
			return err
		}
		fmt.Println(d)
		return nil
	case "khop":
		if len(f) < 4 {
			return fmt.Errorf("usage: khop <src> <etype> <hops>")
		}
		src, _ := parseID(f[1])
		typ, err := parseEdgeType(f[2])
		if err != nil {
			return err
		}
		hops, _ := strconv.Atoi(f[3])
		reached, err := db.KHop(src, typ, hops, 0)
		if err != nil {
			return err
		}
		ids := make([]bg3.VertexID, 0, len(reached))
		for id := range reached {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fmt.Println(id)
		}
		fmt.Printf("(%d vertices)\n", len(ids))
		return nil
	case "cycles":
		if len(f) < 4 {
			return fmt.Errorf("usage: cycles <src> <etype> <maxlen>")
		}
		src, _ := parseID(f[1])
		typ, err := parseEdgeType(f[2])
		if err != nil {
			return err
		}
		maxLen, _ := strconv.Atoi(f[3])
		cycles, err := db.FindCycles(src, typ, maxLen, 0)
		if err != nil {
			return err
		}
		for _, c := range cycles {
			for i, v := range c {
				if i > 0 {
					fmt.Print(" -> ")
				}
				fmt.Print(v)
			}
			fmt.Printf(" -> %d\n", c[0])
		}
		fmt.Printf("(%d cycles)\n", len(cycles))
		return nil
	case "gc":
		batch := 4
		if len(f) > 1 {
			batch, _ = strconv.Atoi(f[1])
		}
		moved, err := db.RunGC(batch)
		if err != nil {
			return err
		}
		fmt.Printf("moved %d bytes\n", moved)
		return nil
	case "failover":
		if err := db.Failover(); err != nil {
			return err
		}
		s := db.Stats()
		fmt.Printf("promoted: epoch=%d failovers=%d fenced_appends=%d\n",
			s.Replication.Epoch, s.Replication.Failovers, s.Replication.FencedAppends)
		return nil
	case "stats":
		if len(f) > 1 {
			switch f[1] {
			case "json":
				// Full metrics registry: every registered instrument.
				buf, err := db.StatsJSON()
				if err != nil {
					return err
				}
				fmt.Println(string(buf))
				return nil
			case "text":
				fmt.Print(db.StatsText())
				return nil
			default:
				return fmt.Errorf("unknown stats format %q (try 'json' or 'text')", f[1])
			}
		}
		s := db.Stats()
		fmt.Printf("storage: %d reads, %d writes, %d B read, %d B written\n",
			s.Storage.ReadOps, s.Storage.WriteOps, s.Storage.BytesRead, s.Storage.BytesWritten)
		fmt.Printf("space:   %d B live / %d B total, GC moved %d B (amp %.2f), %d reclaimed, %d expired\n",
			s.Storage.LiveBytes, s.Storage.TotalBytes, s.GC.BytesMoved, s.GC.WriteAmp,
			s.GC.ExtentsReclaimed, s.GC.ExtentsExpired)
		fmt.Printf("forest:  %d trees, %d owners, %d INIT keys, %d migrations\n",
			s.Forest.Trees, s.Forest.Owners, s.Forest.InitKeys, s.Forest.Migrations)
		fmt.Printf("cache:   %d hits / %d misses (ratio %.2f), read fan-out p99=%d max=%d\n",
			s.Cache.Hits, s.Cache.Misses, s.Cache.HitRatio,
			s.Cache.ReadFanout.P99, s.Cache.ReadFanout.Max)
		fmt.Printf("memory:  ~%d B resident\n", s.Cache.MemoryBytes)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try 'help')", f[0])
	}
}
