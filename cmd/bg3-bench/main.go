// Command bg3-bench runs the reproduction experiments for every table and
// figure in BG3's evaluation (§4) and prints paper-style tables.
//
// Usage:
//
//	bg3-bench [-scale small|medium|large] [-exp all|fig8v|fig8h|fig9|fig10|fig11|table2|fig12|fig13|fig14|cost]
//
// See DESIGN.md §2 for the experiment-to-paper mapping and EXPERIMENTS.md
// for recorded results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bg3/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "experiment scale: small, medium, or large")
	expFlag := flag.String("exp", "all", "experiment to run: all, fig8v, fig8h, fig9, fig10, fig11, table2, fig12, fig13, fig14, cost")
	flag.Parse()

	var scale experiments.Scale
	switch strings.ToLower(*scaleFlag) {
	case "small":
		scale = experiments.Small
	case "medium":
		scale = experiments.Medium
	case "large":
		scale = experiments.Large
	default:
		fmt.Fprintf(os.Stderr, "bg3-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	runners := map[string]func(){
		"fig8v":  func() { experiments.Fig8Vertical(scale, nil, os.Stdout) },
		"fig8h":  func() { experiments.Fig8Horizontal(scale, nil, os.Stdout) },
		"fig9":   func() { experiments.Fig9ReadAmplification(scale, os.Stdout) },
		"fig10":  func() { experiments.Fig10WriteBandwidth(scale, os.Stdout) },
		"fig11":  func() { experiments.Fig11ForestScaling(scale, nil, os.Stdout) },
		"table2": func() { experiments.Table2SpaceReclamation(scale, os.Stdout) },
		"fig12":  func() { experiments.Fig12Recall(scale, nil, os.Stdout) },
		"fig13":  func() { experiments.Fig13SyncLatency(scale, nil, os.Stdout) },
		"fig14":  func() { experiments.Fig14ROScaling(scale, nil, os.Stdout) },
		"cost":   func() { experiments.StorageCost(scale, os.Stdout) },
	}
	// Deterministic run order for -exp all.
	order := []string{"fig8v", "fig8h", "cost", "fig9", "fig10", "fig11", "table2", "fig12", "fig13", "fig14"}

	name := strings.ToLower(*expFlag)
	if name == "all" {
		start := time.Now()
		fmt.Printf("BG3 reproduction suite — scale=%s\n", scale)
		for _, n := range order {
			runners[n]()
		}
		fmt.Printf("\nall experiments completed in %v\n", time.Since(start).Round(time.Second))
		return
	}
	run, ok := runners[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "bg3-bench: unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
	run()
}
