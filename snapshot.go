package bg3

import (
	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/pattern"
)

// Snapshot is a snapshot-isolated read handle: every read through it
// observes the graph exactly as of one group-commit boundary, no matter
// how many writes commit, pages consolidate, or owners migrate while it
// is open.
//
//	s := db.Snapshot()
//	defer s.Close()
//	reached, err := s.KHop(user, bg3.ETypeFollow, 3, 100)
//
// On a DB opened without Options.Replicated there is no WAL and no epoch
// clock, so the snapshot degrades to latest-state reads.
//
// A Snapshot holds Bw-tree history and invalidated extents alive until
// closed; close it promptly. Safe for concurrent use by multiple readers;
// Close is idempotent.
type Snapshot struct {
	view *core.ReadView
}

var _ graph.Reader = (*Snapshot)(nil)

// Snapshot pins the current read epoch and returns a consistent read
// handle. The caller must Close it.
func (db *DB) Snapshot() *Snapshot {
	return &Snapshot{view: db.eng().View()}
}

// Epoch returns the pinned group-commit boundary (the WAL LSN of the last
// record in the last group this snapshot observes; 0 in non-replicated
// mode).
func (s *Snapshot) Epoch() uint64 { return uint64(s.view.Epoch()) }

// Close releases the snapshot's epoch pin. Idempotent.
func (s *Snapshot) Close() { s.view.Close() }

// GetVertex fetches a vertex as of the snapshot.
func (s *Snapshot) GetVertex(id VertexID, typ VertexType) (Vertex, bool, error) {
	return s.view.GetVertex(id, typ)
}

// GetEdge fetches one edge as of the snapshot.
func (s *Snapshot) GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error) {
	return s.view.GetEdge(src, typ, dst)
}

// Neighbors streams src's out-neighbors as of the snapshot, with
// DB.Neighbors' callback-scoped Properties validity.
func (s *Snapshot) Neighbors(src VertexID, typ EdgeType, limit int, fn func(VertexID, Properties) bool) error {
	return s.view.Neighbors(src, typ, limit, fn)
}

// Degree returns src's out-degree as of the snapshot.
func (s *Snapshot) Degree(src VertexID, typ EdgeType) (int, error) {
	return s.view.Degree(src, typ)
}

// KHop is DB.KHop evaluated entirely at the snapshot's epoch.
func (s *Snapshot) KHop(start VertexID, typ EdgeType, hops, perVertexLimit int) (map[VertexID]struct{}, error) {
	return graph.KHop(s.view, start, typ, hops, perVertexLimit)
}

// MatchPattern is DB.MatchPattern evaluated at the snapshot's epoch.
func (s *Snapshot) MatchPattern(p Pattern, seeds []VertexID, maxMatches int) ([][]VertexID, error) {
	return pattern.Match(s.view, p, seeds, maxMatches)
}

// FindCycles is DB.FindCycles evaluated at the snapshot's epoch.
func (s *Snapshot) FindCycles(start VertexID, typ EdgeType, maxLen, maxCycles int) ([][]VertexID, error) {
	return pattern.FindCycles(s.view, start, typ, maxLen, maxCycles)
}
