package bg3

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func openDB(t *testing.T, opts *Options) *DB {
	t.Helper()
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(db.Close)
	return db
}

func TestOpenDefaults(t *testing.T) {
	db := openDB(t, nil)
	if err := db.AddVertex(Vertex{ID: 1, Type: VTypeUser}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := db.GetVertex(1, VTypeUser); !ok {
		t.Fatal("vertex lost")
	}
}

func TestPublicGraphAPI(t *testing.T) {
	db := openDB(t, &Options{ForestSplitThreshold: 100})
	if err := db.AddVertex(Vertex{ID: 1, Type: VTypeUser,
		Props: Properties{{Name: "name", Value: []byte("alice")}}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := db.AddEdge(Edge{Src: 1, Dst: VertexID(100 + i), Type: ETypeLike,
			Props: Properties{{Name: "ts", Value: []byte(fmt.Sprint(i))}}}); err != nil {
			t.Fatal(err)
		}
	}
	if deg, _ := db.Degree(1, ETypeLike); deg != 50 {
		t.Fatalf("degree = %d", deg)
	}
	e, ok, _ := db.GetEdge(1, ETypeLike, 110)
	if !ok {
		t.Fatal("edge missing")
	}
	if ts, _ := e.Props.Get("ts"); string(ts) != "10" {
		t.Fatalf("edge props = %+v", e.Props)
	}
	if err := db.DeleteEdge(1, ETypeLike, 110); err != nil {
		t.Fatal(err)
	}
	if deg, _ := db.Degree(1, ETypeLike); deg != 49 {
		t.Fatalf("degree after delete = %d", deg)
	}
	n := 0
	if err := db.Neighbors(1, ETypeLike, 10, func(VertexID, Properties) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("limited neighbors = %d", n)
	}
}

func TestKHopAndPatterns(t *testing.T) {
	db := openDB(t, nil)
	for _, e := range []Edge{
		{Src: 1, Dst: 2, Type: ETypeTransfer},
		{Src: 2, Dst: 3, Type: ETypeTransfer},
		{Src: 3, Dst: 1, Type: ETypeTransfer},
	} {
		if err := db.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	reached, err := db.KHop(1, ETypeTransfer, 2, 0)
	if err != nil || len(reached) != 2 {
		t.Fatalf("khop = %v %v", reached, err)
	}
	cycles, err := db.FindCycles(1, ETypeTransfer, 3, 0)
	if err != nil || len(cycles) != 1 {
		t.Fatalf("cycles = %v %v", cycles, err)
	}
	matches, err := db.MatchPattern(Pattern{N: 2, Edges: []PatternEdge{{From: 0, To: 1, Type: ETypeTransfer}}},
		[]VertexID{1}, 0)
	if err != nil || len(matches) != 1 {
		t.Fatalf("matches = %v %v", matches, err)
	}
}

func TestReplicationAPI(t *testing.T) {
	db := openDB(t, &Options{
		Replicated:          true,
		FlushInterval:       5 * time.Millisecond,
		ReplicaPollInterval: time.Millisecond,
	})
	rep, err := db.OpenReplica()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.AddEdge(Edge{Src: 1, Dst: VertexID(i + 100), Type: ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if deg, err := rep.Degree(1, ETypeFollow); err != nil || deg != 100 {
		t.Fatalf("replica degree = %d %v", deg, err)
	}
	if _, ok, _ := rep.GetEdge(1, ETypeFollow, 142); !ok {
		t.Fatal("replica missing edge")
	}
	reached, err := rep.KHop(1, ETypeFollow, 1, 0)
	if err != nil || len(reached) != 100 {
		t.Fatalf("replica khop = %d %v", len(reached), err)
	}
}

func TestOpenReplicaRequiresReplication(t *testing.T) {
	db := openDB(t, nil)
	if _, err := db.OpenReplica(); err != ErrNotReplicated {
		t.Fatalf("err = %v, want ErrNotReplicated", err)
	}
}

func TestStatsSnapshot(t *testing.T) {
	db := openDB(t, &Options{ForestSplitThreshold: 10})
	for i := 0; i < 50; i++ {
		if err := db.AddEdge(Edge{Src: 7, Dst: VertexID(i), Type: ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	s := db.Stats()
	if s.Storage.WriteOps == 0 || s.Storage.BytesWritten == 0 {
		t.Fatalf("stats missing write accounting: %+v", s)
	}
	if s.Forest.Trees < 2 {
		t.Fatalf("trees = %d, want the hot vertex split out", s.Forest.Trees)
	}
	if s.Cache.MemoryBytes == 0 {
		t.Fatal("memory estimate is zero")
	}
}

func TestTTLViaPublicAPI(t *testing.T) {
	db := openDB(t, &Options{TTL: time.Millisecond, ExtentSize: 1 << 10, MaxPageEntries: 16})
	for i := 0; i < 100; i++ {
		if err := db.AddEdge(Edge{Src: 1, Dst: VertexID(i), Type: ETypeTransfer}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := db.RunGC(8); err != nil {
		t.Fatal(err)
	}
	if db.Stats().GC.ExtentsExpired == 0 {
		t.Fatal("TTL expiry never happened")
	}
}

func TestCheckpointNoopWithoutReplication(t *testing.T) {
	db := openDB(t, nil)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotAndTrimPublicAPI(t *testing.T) {
	db := openDB(t, &Options{Replicated: true, ReplicaPollInterval: time.Millisecond})
	for i := 0; i < 300; i++ {
		if err := db.AddEdge(Edge{Src: 1, Dst: VertexID(i + 10), Type: ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WriteSnapshot(); err != nil {
		t.Fatal(err)
	}
	db.TrimWAL() // may or may not free extents depending on sizes
	rep, err := db.OpenReplica()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if deg, err := rep.Degree(1, ETypeFollow); err != nil || deg != 300 {
		t.Fatalf("replica degree = %d %v, want 300", deg, err)
	}
}

func TestSnapshotRequiresReplication(t *testing.T) {
	db := openDB(t, nil)
	if err := db.WriteSnapshot(); err != ErrNotReplicated {
		t.Fatalf("err = %v, want ErrNotReplicated", err)
	}
	if db.TrimWAL() != 0 {
		t.Fatal("TrimWAL on non-replicated DB freed extents")
	}
}

func TestAutoSnapshotLoop(t *testing.T) {
	db := openDB(t, &Options{
		Replicated:          true,
		SnapshotInterval:    10 * time.Millisecond,
		ReplicaPollInterval: time.Millisecond,
	})
	for i := 0; i < 200; i++ {
		if err := db.AddEdge(Edge{Src: 2, Dst: VertexID(i), Type: ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(40 * time.Millisecond) // a few snapshot ticks
	rep, err := db.OpenReplica()      // bootstraps from the latest snapshot
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if deg, err := rep.Degree(2, ETypeLike); err != nil || deg != 200 {
		t.Fatalf("degree = %d %v", deg, err)
	}
}

func TestClusterDB(t *testing.T) {
	c, err := OpenCluster(3, &Options{ReplicaPollInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Shards() != 3 {
		t.Fatalf("shards = %d", c.Shards())
	}
	for i := 0; i < 90; i++ {
		if err := c.AddEdge(Edge{Src: VertexID(i % 9), Dst: VertexID(100 + i), Type: ETypeTransfer}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.AddVertex(Vertex{ID: 4, Type: VTypeUser}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.GetVertex(4, VTypeUser); !ok {
		t.Fatal("vertex lost")
	}
	view, err := c.OpenReadView()
	if err != nil {
		t.Fatal(err)
	}
	if err := view.Sync(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for src := 0; src < 9; src++ {
		d, err := view.Degree(VertexID(src), ETypeTransfer)
		if err != nil {
			t.Fatal(err)
		}
		total += d
	}
	if total != 90 {
		t.Fatalf("view total = %d", total)
	}
	// Cross-shard traversal and pattern matching on followers.
	if err := c.AddEdge(Edge{Src: 200, Dst: 201, Type: ETypeTransfer}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddEdge(Edge{Src: 201, Dst: 200, Type: ETypeTransfer}); err != nil {
		t.Fatal(err)
	}
	if err := view.Sync(); err != nil {
		t.Fatal(err)
	}
	cycles, err := view.FindCycles(200, ETypeTransfer, 3, 0)
	if err != nil || len(cycles) != 1 {
		t.Fatalf("cycles = %v %v", cycles, err)
	}
	if _, err := view.KHop(200, ETypeTransfer, 2, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGCOnReplicatedDBKeepsReplicasConsistent(t *testing.T) {
	db := openDB(t, &Options{
		Replicated:          true,
		ExtentSize:          4 << 10,
		MaxPageEntries:      16,
		ConsolidateNum:      3,
		FlushInterval:       5 * time.Millisecond,
		ReplicaPollInterval: time.Millisecond,
	})
	rep, err := db.OpenReplica()
	if err != nil {
		t.Fatal(err)
	}
	// Heavy overwrites build garbage; each round flushes (checkpoint),
	// reclaims, and then verifies the replica still reads a consistent
	// view through the relocations.
	for round := 0; round < 15; round++ {
		for i := 0; i < 40; i++ {
			if err := db.AddEdge(Edge{Src: 1, Dst: VertexID(i), Type: ETypeLike,
				Props: Properties{{Name: "r", Value: []byte{byte(round)}}}}); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if _, err := db.RunGC(8); err != nil {
			t.Fatal(err)
		}
		if err := db.Checkpoint(); err != nil { // ships GC relocations
			t.Fatal(err)
		}
		if err := rep.Sync(); err != nil {
			t.Fatalf("round %d: replica sync: %v", round, err)
		}
		if deg, err := rep.Degree(1, ETypeLike); err != nil || deg != 40 {
			t.Fatalf("round %d: replica degree = %d %v", round, deg, err)
		}
	}
	if db.Stats().GC.ExtentsReclaimed == 0 {
		t.Fatal("GC never reclaimed an extent; the test exercised nothing")
	}
}

func TestConcurrentOpenReplica(t *testing.T) {
	db := openDB(t, &Options{Replicated: true, ReplicaPollInterval: time.Millisecond})
	if err := db.AddEdge(Edge{Src: 1, Dst: 2, Type: ETypeFollow}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	reps := make([]*Replica, 8)
	for i := range reps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := db.OpenReplica()
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = r
		}(i)
	}
	wg.Wait()
	for i, r := range reps {
		if r == nil {
			t.Fatalf("replica %d missing", i)
		}
		if err := r.Sync(); err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := r.GetEdge(1, ETypeFollow, 2); !ok {
			t.Fatalf("replica %d missing edge", i)
		}
	}
}

func TestStatsNestedAndJSON(t *testing.T) {
	db := openDB(t, &Options{
		Replicated:           true,
		ForestSplitThreshold: 10,
		ReplicaPollInterval:  time.Millisecond,
	})
	for i := 0; i < 60; i++ {
		if err := db.AddEdge(Edge{Src: 9, Dst: VertexID(i), Type: ETypeLike}); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := db.OpenReplica()
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, _, err := db.GetEdge(9, ETypeLike, VertexID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.RunGC(4); err != nil {
		t.Fatal(err)
	}

	s := db.Stats()
	if s.Storage.WriteOps == 0 || s.Storage.BytesWritten == 0 {
		t.Fatalf("storage accounting missing: %+v", s.Storage)
	}
	if s.WAL.Appends == 0 || s.WAL.CommitRecords == 0 {
		t.Fatalf("WAL accounting missing: %+v", s.WAL)
	}
	if s.WAL.CommitLatency.Count == 0 {
		t.Fatalf("commit latency histogram empty: %+v", s.WAL.CommitLatency)
	}
	if s.Cache.ReadFanout.Count == 0 {
		t.Fatalf("read fan-out histogram empty: %+v", s.Cache.ReadFanout)
	}
	if s.Forest.Trees == 0 || s.Forest.Owners == 0 {
		t.Fatalf("forest accounting missing: %+v", s.Forest)
	}
	if s.Replication.Replicas != 1 {
		t.Fatalf("replicas = %d, want 1", s.Replication.Replicas)
	}

	// The nested struct must marshal cleanly with every subsystem present.
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"storage"`, `"wal"`, `"cache"`, `"forest"`, `"gc"`, `"replication"`,
		`"read_fanout"`, `"write_amp"`, `"applied_lsn_lag"`} {
		if !strings.Contains(string(buf), key) {
			t.Fatalf("Stats JSON missing %s:\n%s", key, buf)
		}
	}

	// The registry renderings must cover every subsystem's instruments.
	reg, err := db.StatsJSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(reg, &snap); err != nil {
		t.Fatalf("StatsJSON is not valid JSON: %v", err)
	}
	for _, name := range []string{"storage.read_ops", "wal.commit_us", "bwtree.read_fanout",
		"forest.trees", "gc.write_amp", "replication.applied_lsn_lag", "replication.replicas"} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("registry snapshot missing %q", name)
		}
	}
	text := db.StatsText()
	if !strings.Contains(text, "bwtree.cache_hit_ratio") || !strings.Contains(text, "wal.appends") {
		t.Fatalf("StatsText missing expected instruments:\n%s", text)
	}
}

func TestReplicationLagConverges(t *testing.T) {
	db := openDB(t, &Options{Replicated: true, ReplicaPollInterval: time.Millisecond})
	rep, err := db.OpenReplica()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := db.AddEdge(Edge{Src: 2, Dst: VertexID(i), Type: ETypeFollow}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	if lag := db.Stats().Replication.AppliedLSNLag; lag != 0 {
		t.Fatalf("applied-LSN lag after sync = %d, want 0", lag)
	}
	if rep.AppliedLSN() == 0 {
		t.Fatal("replica applied LSN is zero after applying 30 writes")
	}
}
