package bg3

import (
	"time"

	"bg3/internal/replication"
)

// Failover deposes the current leader and promotes a fresh follower over
// the same shared store — the recovery path for a crashed or hung RW node,
// and a drill for practicing it (§3.4's single-writer architecture made
// survivable). The sequence:
//
//  1. A new fence epoch is claimed on the WAL stream. From that instant
//     every append still carried by the old leader fails with an error
//     wrapping storage.ErrFenced: in-flight writes surface the failure to
//     their callers instead of being silently lost, and the old leader's
//     writer fail-stops.
//  2. A follower bootstraps from the latest snapshot, drains the durable
//     WAL tail (every write acknowledged before the fence), and is rebuilt
//     into a live RW engine appending at the new epoch.
//  3. The DB atomically routes subsequent reads and writes to the promoted
//     leader, and attached replicas re-bootstrap onto its fresh snapshot.
//
// Writes issued concurrently with Failover either commit durably (they beat
// the fence and the promoted leader replays them) or fail with ErrFenced /
// wal.ErrWriterFailed — never silent loss. Like crash recovery, promotion
// needs at least one snapshot on the store; Failover writes one through the
// old leader on a best-effort basis, which succeeds whenever that leader is
// still healthy. On a DB opened without Options.Replicated it returns
// ErrNotReplicated.
func (db *DB) Failover() error {
	old := db.leader()
	if old == nil {
		return ErrNotReplicated
	}
	// Best-effort bootstrap point: a dead or already-fenced leader fails
	// this harmlessly and the last periodic snapshot is used instead.
	_, _ = old.WriteSnapshot()

	// The transient follower exists only to be promoted; Promote stops its
	// poll loop immediately, so the interval never fires.
	ro, err := replication.NewRONodeFromSnapshot(db.store, time.Hour, 0)
	if err != nil {
		return err
	}
	rw, err := replication.Promote(ro, db.opts.rwOptions())
	if err != nil {
		return err
	}

	db.rw.Store(rw)
	db.engine.Store(rw.Engine())
	db.registerReplicationMetrics(rw.Engine().Metrics())
	db.failovers.Add(1)
	old.Stop()

	// The promoted leader replayed into a fresh physical page-ID space and
	// published a new snapshot; replicas attached to the deposed leader
	// re-bootstrap from it so they keep serving consistent reads.
	db.mu.Lock()
	replicas := append([]*Replica(nil), db.replicas...)
	db.mu.Unlock()
	for _, r := range replicas {
		if err := r.ro.Resync(); err != nil {
			return err
		}
	}
	return nil
}

// Epoch returns the WAL fence epoch the current leader appends under: 0
// until the first failover, incremented by each one. Always 0 on a
// non-replicated DB.
func (db *DB) Epoch() uint64 {
	if rw := db.leader(); rw != nil {
		return rw.Epoch()
	}
	return 0
}

// Failovers returns how many times this DB has promoted a new leader.
func (db *DB) Failovers() int64 { return db.failovers.Load() }

// Failover deposes the leader of one shard and promotes a follower in its
// place; see DB.Failover for the sequence and guarantees. Writes routed to
// the shard during the switch fail with fencing errors rather than being
// silently dropped.
func (c *ClusterDB) Failover(shard int) error { return c.cluster.Failover(shard) }

// Failovers returns how many shard leaders this cluster has replaced.
func (c *ClusterDB) Failovers() int64 { return c.cluster.Failovers() }

// ShardEpoch returns the WAL fence epoch of one shard's current leader.
func (c *ClusterDB) ShardEpoch(shard int) uint64 { return c.cluster.ShardEpoch(shard) }
