# BG3 reproduction — common targets.

GO ?= go

.PHONY: all build test race bench bench-short benchdiff microbench repro examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark trajectory: throughput, p50/p99 latency, read fan-out, cache
# hit ratio, allocation cost, and GC write amplification per Table-1
# workload, plus the super-vertex full-adjacency-scan pair (packed CSR
# edge blocks on/off) and the replicated write-heavy group-commit
# scenarios (serial, pipelined, and
# pipelined-with-pinned-snapshot-readers), the sharded-insert write
# scaling series (1/4/16 hash-partitioned shards, one WAL stream and
# group committer each), and the sharded-txn series (the same stream as
# two-shard 2PC batches, quantifying the cross-shard transaction
# premium), written to BENCH_PR10.json for diffing across PRs.
bench:
	$(GO) run ./cmd/bg3-benchjson -out BENCH_PR10.json

# Reduced scale for CI; writes a separate file so the checked-in
# full-scale baselines are never clobbered.
bench-short:
	$(GO) run ./cmd/bg3-benchjson -short -out BENCH_SHORT.json

# Compare the two checked-in full-scale trajectories; fails on a >20%
# throughput regression.
benchdiff:
	$(GO) run ./cmd/bg3-benchdiff BENCH_PR9.json BENCH_PR10.json

# One benchmark per paper table/figure, plus ablations and micro-benches.
microbench:
	$(GO) test -bench=. -benchmem ./...

# Full paper-style reproduction tables (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/bg3-bench -scale medium

repro-quick:
	$(GO) run ./cmd/bg3-bench -scale small

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/douyinfollow
	$(GO) run ./examples/recommendation
	$(GO) run ./examples/riskcontrol
	$(GO) run ./examples/ttlwindow

clean:
	$(GO) clean ./...
