# BG3 reproduction — common targets.

GO ?= go

.PHONY: all build test race bench repro examples clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One benchmark per paper table/figure, plus ablations and micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Full paper-style reproduction tables (see EXPERIMENTS.md).
repro:
	$(GO) run ./cmd/bg3-bench -scale medium

repro-quick:
	$(GO) run ./cmd/bg3-bench -scale small

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/douyinfollow
	$(GO) run ./examples/recommendation
	$(GO) run ./examples/riskcontrol
	$(GO) run ./examples/ttlwindow

clean:
	$(GO) clean ./...
