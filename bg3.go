// Package bg3 is a from-scratch reproduction of BG3 (ByteGraph 3.0), the
// cost-effective and I/O-efficient graph database described in "BG3: A
// Cost Effective and I/O Efficient Graph Database in ByteDance"
// (SIGMOD-Companion 2024).
//
// A DB stores a property graph — typed vertices and directed, typed edges,
// both carrying binary property lists — on an append-only shared storage
// substrate through a forest of read-optimized Bw-trees:
//
//	db, err := bg3.Open(&bg3.Options{ForestSplitThreshold: 1000})
//	...
//	db.AddEdge(bg3.Edge{Src: user, Dst: video, Type: bg3.ETypeLike})
//	db.Neighbors(user, bg3.ETypeLike, 0, func(dst bg3.VertexID, _ bg3.Properties) bool {
//	    ...
//	    return true
//	})
//
// Opening the database with Options.Replicated enables the paper's
// I/O-efficient leader-follower synchronization: every write is
// group-committed to a write-ahead log on the shared store, and read-only
// replicas attached with DB.OpenReplica tail that log, providing strongly
// consistent reads that scale out (§3.4).
package bg3

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"bg3/internal/core"
	"bg3/internal/graph"
	"bg3/internal/metrics"
	"bg3/internal/pattern"
	"bg3/internal/replication"
	"bg3/internal/storage"
)

// Re-exported graph model types; see the graph package for details.
type (
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// VertexType partitions vertices (user, video, ...).
	VertexType = graph.VertexType
	// EdgeType partitions a vertex's adjacency lists. Type 0xFFFF is
	// reserved.
	EdgeType = graph.EdgeType
	// Vertex is a typed vertex with properties.
	Vertex = graph.Vertex
	// Edge is a typed directed edge with properties.
	Edge = graph.Edge
	// Property is one named property value.
	Property = graph.Property
	// Properties is an ordered property list.
	Properties = graph.Properties
	// Store is the engine-neutral graph API.
	Store = graph.Store
	// Mutation is one element of a batched write (DB.ApplyBatch).
	Mutation = graph.Mutation
	// MutationKind discriminates batched mutations.
	MutationKind = graph.MutationKind
)

// Mutation constructors, re-exported for DB.ApplyBatch callers.
var (
	// AddVertexMut builds a vertex-upsert mutation.
	AddVertexMut = graph.AddVertexMut
	// AddEdgeMut builds an edge-upsert mutation.
	AddEdgeMut = graph.AddEdgeMut
	// DeleteEdgeMut builds an edge-deletion mutation.
	DeleteEdgeMut = graph.DeleteEdgeMut
)

// Convenience type constants mirroring the example workloads.
const (
	VTypeUser  = graph.VTypeUser
	VTypeVideo = graph.VTypeVideo

	ETypeFollow   = graph.ETypeFollow
	ETypeLike     = graph.ETypeLike
	ETypeTransfer = graph.ETypeTransfer
)

// ErrNotReplicated is returned by OpenReplica on a DB opened without
// Options.Replicated.
var ErrNotReplicated = errors.New("bg3: database opened without replication")

// DB is a BG3 database handle (the read-write node in replicated mode).
// All methods are safe for concurrent use.
type DB struct {
	opts  Options
	store *storage.Store

	// engine and rw are atomic pointers because Failover swaps the leader
	// in place while reads and writes keep flowing; rw is nil outside
	// replicated mode. Every access goes through eng()/leader().
	engine atomic.Pointer[core.Engine]
	rw     atomic.Pointer[replication.RWNode]

	mu       sync.Mutex // guards replicas
	replicas []*Replica

	failovers atomic.Int64

	snapStop chan struct{}
	snapDone chan struct{}
}

// eng returns the current engine (the leader's in replicated mode).
func (db *DB) eng() *core.Engine { return db.engine.Load() }

// leader returns the current RW node, nil outside replicated mode.
func (db *DB) leader() *replication.RWNode { return db.rw.Load() }

var _ graph.Store = (*DB)(nil)

// Open creates a new in-process BG3 database. A nil opts uses defaults.
func Open(opts *Options) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	db := &DB{opts: o}
	if o.Replicated {
		fi := o.FlushInterval
		if fi <= 0 {
			fi = 50 * time.Millisecond
		}
		so := o.storageOptions()
		// Replicas keep reading old page versions until a checkpoint ships
		// relocated locations, so reclaimed extents must linger past a few
		// flush + poll cycles before their memory is released.
		so.ReclaimGrace = time.Second + 8*fi
		db.store = storage.Open(so)
		rw, err := replication.NewRWNode(db.store, o.rwOptions())
		if err != nil {
			db.store.Close()
			return nil, err
		}
		db.rw.Store(rw)
		db.engine.Store(rw.Engine())
		db.registerReplicationMetrics(db.eng().Metrics())
		if o.SnapshotInterval > 0 {
			db.snapStop = make(chan struct{})
			db.snapDone = make(chan struct{})
			go db.snapshotLoop(o.SnapshotInterval)
		}
		return db, nil
	}
	engine, err := core.New(o.coreOptions())
	if err != nil {
		return nil, err
	}
	db.engine.Store(engine)
	db.store = engine.Store()
	return db, nil
}

// registerReplicationMetrics wires the DB-level replication gauges into a
// registry. Called at Open and again after a failover: the promoted leader
// carries a fresh engine and registry, which would otherwise lose these.
func (db *DB) registerReplicationMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("replication.replicas", func() int64 { return int64(db.replicaCount()) })
	reg.GaugeFunc("replication.applied_lsn_lag", func() int64 { return int64(db.replicationLag()) })
	reg.CounterFunc("replication.resyncs", db.replicaResyncs)
	reg.CounterFunc("replication.failovers", db.failovers.Load)
}

// snapshotLoop periodically snapshots the durable state and trims the WAL.
func (db *DB) snapshotLoop(interval time.Duration) {
	defer close(db.snapDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-db.snapStop:
			return
		case <-ticker.C:
			// Errors mean the store is closing; keep ticking until stopped.
			if _, err := db.leader().WriteSnapshot(); err == nil {
				db.leader().TrimWAL()
			}
		}
	}
}

// Close stops background work and releases the database.
func (db *DB) Close() {
	if db.snapStop != nil {
		close(db.snapStop)
		<-db.snapDone
		db.snapStop = nil
	}
	db.mu.Lock()
	replicas := db.replicas
	db.replicas = nil
	db.mu.Unlock()
	for _, r := range replicas {
		r.Stop()
	}
	if db.leader() != nil {
		db.leader().Stop()
		db.store.Close()
		return
	}
	db.eng().Close()
}

// writeStore returns the graph.Store handling writes (the RW node in
// replicated mode, so the apply barrier and WAL are engaged).
func (db *DB) writeStore() graph.Store {
	if rw := db.leader(); rw != nil {
		return rw
	}
	return db.eng()
}

// AddVertex upserts a vertex.
func (db *DB) AddVertex(v Vertex) error { return db.writeStore().AddVertex(v) }

// GetVertex fetches a vertex.
func (db *DB) GetVertex(id VertexID, typ VertexType) (Vertex, bool, error) {
	return db.eng().GetVertex(id, typ)
}

// AddEdge upserts a directed edge.
func (db *DB) AddEdge(e Edge) error { return db.writeStore().AddEdge(e) }

// GetEdge fetches one edge.
func (db *DB) GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error) {
	return db.eng().GetEdge(src, typ, dst)
}

// DeleteEdge removes one edge.
func (db *DB) DeleteEdge(src VertexID, typ EdgeType, dst VertexID) error {
	return db.writeStore().DeleteEdge(src, typ, dst)
}

// ApplyBatch applies a group of mutations in order and commits them as
// shared WAL groups: every record is enqueued on the group committer
// before the first durability wait starts, so the whole batch pays for a
// handful of storage round trips instead of one per mutation. Replicas
// replay each commit group as a unit. No mutation is acknowledged before
// the batch's WAL records are durable; on error, mutations after the
// failing one are not applied. In non-replicated mode (no WAL) the batch
// degrades to ordered in-memory applies.
func (db *DB) ApplyBatch(muts []Mutation) error {
	if db.leader() != nil {
		return db.leader().ApplyBatch(muts)
	}
	return db.eng().ApplyBatch(muts)
}

// Neighbors streams src's out-neighbors of the given edge type in
// destination order until fn returns false or limit edges are delivered
// (limit <= 0: unlimited). The Properties passed to fn are only valid for
// the duration of the callback; copy values to retain them.
func (db *DB) Neighbors(src VertexID, typ EdgeType, limit int, fn func(VertexID, Properties) bool) error {
	return db.eng().Neighbors(src, typ, limit, fn)
}

// Degree returns src's out-degree for the given edge type.
func (db *DB) Degree(src VertexID, typ EdgeType) (int, error) {
	return db.eng().Degree(src, typ)
}

// KHop expands hops levels of out-neighbors from start, returning the set
// of vertices reached (excluding start). perVertexLimit bounds per-vertex
// fan-out (<= 0: unlimited).
//
// The whole traversal runs against one pinned read epoch: every hop sees
// the graph as of the same group-commit boundary, so concurrent batches
// can no longer tear a multi-hop read (observing a later hop's state from
// after a commit the earlier hops predate).
func (db *DB) KHop(start VertexID, typ EdgeType, hops, perVertexLimit int) (map[VertexID]struct{}, error) {
	s := db.Snapshot()
	defer s.Close()
	return graph.KHop(s.view, start, typ, hops, perVertexLimit)
}

// Pattern is a small query graph for MatchPattern; see pattern.Pattern.
type Pattern = pattern.Pattern

// PatternEdge is one pattern edge between pattern-vertex indices.
type PatternEdge = pattern.PEdge

// MatchPattern finds up to maxMatches embeddings of p anchored at the
// seed vertices. Like KHop, the whole match runs at one pinned read epoch.
func (db *DB) MatchPattern(p Pattern, seeds []VertexID, maxMatches int) ([][]VertexID, error) {
	s := db.Snapshot()
	defer s.Close()
	return pattern.Match(s.view, p, seeds, maxMatches)
}

// FindCycles returns simple cycles through start of length 2..maxLen —
// the risk-control loop detection. Runs at one pinned read epoch.
func (db *DB) FindCycles(start VertexID, typ EdgeType, maxLen, maxCycles int) ([][]VertexID, error) {
	s := db.Snapshot()
	defer s.Close()
	return pattern.FindCycles(s.view, start, typ, maxLen, maxCycles)
}

// RunGC triggers one synchronous space-reclamation cycle (batch extents
// per data stream) and returns the bytes moved.
func (db *DB) RunGC(batch int) (int64, error) { return db.eng().RunGC(batch) }

// BuildEdgeBlocks eagerly packs every dedicated tree that is past the
// edge-block threshold (Options.EdgeBlockThreshold) into its CSR-style
// packed block, returning the number of blocks built. Blocks are normally
// built opportunistically at flush/consolidation time; this forces the
// work now — useful after a bulk load, before a read-heavy phase.
func (db *DB) BuildEdgeBlocks() (int, error) {
	return db.eng().Forest().BuildEdgeBlocks()
}

// Checkpoint flushes dirty pages and publishes a WAL checkpoint
// (replicated mode). In non-replicated mode it is a no-op.
func (db *DB) Checkpoint() error {
	if db.leader() == nil {
		return nil
	}
	return db.leader().Checkpoint()
}

// Stats summarizes the database's I/O, space, cache, WAL, and replication
// accounting, grouped by subsystem. The struct marshals cleanly to JSON;
// StatsJSON and StatsText render the full metrics registry instead (every
// registered instrument, including ones not surfaced here).
type Stats struct {
	Storage     StorageStats     `json:"storage"`
	WAL         WALStats         `json:"wal"`
	Cache       CacheStats       `json:"cache"`
	Forest      ForestStats      `json:"forest"`
	EdgeBlocks  EdgeBlockStats   `json:"edge_blocks"`
	GC          GCStats          `json:"gc"`
	MVCC        MVCCStats        `json:"mvcc"`
	Replication ReplicationStats `json:"replication"`
}

// StorageStats is the shared store's I/O, space, and fault accounting.
type StorageStats struct {
	ReadOps         int64 `json:"read_ops"`
	WriteOps        int64 `json:"write_ops"`
	BytesRead       int64 `json:"bytes_read"`
	BytesWritten    int64 `json:"bytes_written"`
	BatchReads      int64 `json:"batch_reads"`
	BatchLocs       int64 `json:"batch_locs"`
	BatchRoundTrips int64 `json:"batch_round_trips"`
	LiveBytes       int64 `json:"live_bytes"`
	TotalBytes      int64 `json:"total_bytes"`
	ExtentCount     int64 `json:"extent_count"`
	FaultsInjected  int64 `json:"faults_injected"`
	FaultRetries    int64 `json:"fault_retries"`
	FaultRecoveries int64 `json:"fault_recoveries"`
}

// WALStats covers the append and group-commit pipelines. All zero on a DB
// opened without Options.Replicated (no WAL runs).
type WALStats struct {
	Appends       int64          `json:"appends"`
	AppendLatency HistogramStats `json:"append_latency"`
	CommitBatches int64          `json:"commit_batches"`
	CommitRecords int64          `json:"commit_records"`
	CommitLatency HistogramStats `json:"commit_latency"`
	// GroupSize is the records-per-flush distribution: its mean is the
	// write-side amortization factor (records acked per storage round
	// trip, §3.4).
	GroupSize FanoutStats `json:"group_size"`
	// GroupStall is the backpressure writers paid on a full commit queue.
	GroupStall HistogramStats `json:"group_stall"`
	// InflightGroups is the number of sealed WAL group appends in flight at
	// the instant of the stats snapshot; PipelineDepth is the committer's
	// current effective depth (adaptive sizing may hold it below the
	// configured CommitPipelineDepth).
	InflightGroups int `json:"inflight_groups"`
	PipelineDepth  int `json:"pipeline_depth"`
	// AckReorder is how long durable groups waited for their predecessors
	// before their acks could release in LSN order — the cost of in-order
	// release under out-of-order pipelined completion.
	AckReorder HistogramStats `json:"ack_reorder"`
	// PipelineUtilization is the distribution of concurrently in-flight
	// appends observed at each dispatch (mean > 1 means round trips
	// actually overlap).
	PipelineUtilization FanoutStats `json:"pipeline_utilization"`
	LastLSN             uint64      `json:"last_lsn"`
	Checkpoints         int64       `json:"checkpoints"`
}

// CacheStats is the page cache's hit accounting plus the per-read storage
// fan-out distribution (Fig. 9: at most 2 under the read-optimized policy).
type CacheStats struct {
	Hits            int64          `json:"hits"`
	Misses          int64          `json:"misses"`
	CoalescedMisses int64          `json:"coalesced_misses"`
	HitRatio        float64        `json:"hit_ratio"`
	Shards          int            `json:"shards"`
	Evictions       int64          `json:"evictions"`
	ReadaheadIssued int64          `json:"readahead_issued"`
	ReadaheadHits   int64          `json:"readahead_hits"`
	ReadFanout      FanoutStats    `json:"read_fanout"`
	MaterializeLat  HistogramStats `json:"materialize_latency"`
	Pages           int64          `json:"pages"`
	MemoryBytes     int64          `json:"memory_bytes"`
}

// ForestStats is the Bw-tree forest's shape (Fig. 11).
type ForestStats struct {
	Trees      int `json:"trees"`
	Owners     int `json:"owners"`
	InitKeys   int `json:"init_keys"`
	Migrations int `json:"migrations"`
}

// EdgeBlockStats is the packed CSR edge-block accounting (§3.2.1
// super-vertices): blocks built, scans served from a block (hits) versus
// forced back to the merged delta path (fallbacks), and the resident
// footprint of the live blocks.
type EdgeBlockStats struct {
	Builds      int64 `json:"builds"`
	SkippedPins int64 `json:"skipped_pins"`
	Hits        int64 `json:"hits"`
	Fallbacks   int64 `json:"fallbacks"`
	Entries     int64 `json:"entries"`
	Bytes       int64 `json:"bytes"`
	Parts       int64 `json:"parts"`
}

// GCStats is the space-reclamation accounting. WriteAmp is bytes moved per
// byte freed — the cost metric the workload-aware policy of §3.3 minimizes.
type GCStats struct {
	BytesMoved       int64   `json:"bytes_moved"`
	BytesReclaimed   int64   `json:"bytes_reclaimed"`
	WriteAmp         float64 `json:"write_amp"`
	Runs             int64   `json:"runs"`
	ExtentsReclaimed int64   `json:"extents_reclaimed"`
	ExtentsExpired   int64   `json:"extents_expired"`
	// PinDeferred counts extent picks the reclaimer skipped because a
	// pinned snapshot may still read their invalidated records.
	PinDeferred int64 `json:"pin_deferred"`
	// BlockPinned counts extent picks the reclaimer skipped because a live
	// packed edge block is backed by them.
	BlockPinned int64 `json:"block_pinned"`
}

// MVCCStats is the read-epoch clock's accounting. All zero on a DB opened
// without Options.Replicated (no WAL, no epochs: reads are latest-state).
type MVCCStats struct {
	// ReadEpoch is the current read epoch: the highest group-released WAL
	// LSN. A snapshot pinned now observes exactly this boundary.
	ReadEpoch uint64 `json:"read_epoch"`
	// PinnedEpochs is the number of live snapshot pins.
	PinnedEpochs int64 `json:"pinned_epochs"`
	// EpochLag is ReadEpoch minus the oldest pinned epoch (LSN distance):
	// how much history the oldest snapshot holds back from consolidation.
	EpochLag uint64 `json:"epoch_lag"`
	// PinsTotal counts snapshots taken over the DB's lifetime.
	PinsTotal int64 `json:"pins_total"`
	// RetainedBytes is the in-memory size of delta-chain history kept above
	// the retention floor for pinned snapshots.
	RetainedBytes int64 `json:"retained_bytes"`
}

// ReplicationStats covers the attached read-only replicas and leader
// failover. AppliedLSNLag is the worst lag across replicas: the leader's
// last assigned LSN minus the replica's applied LSN (Fig. 13). Epoch is the
// WAL fence token the current leader appends under (0 until the first
// failover); FencedAppends counts appends the shared store rejected with
// storage.ErrFenced — each one a deposed leader's write that fencing kept
// out of the log.
type ReplicationStats struct {
	Replicas      int    `json:"replicas"`
	AppliedLSNLag uint64 `json:"applied_lsn_lag"`
	Resyncs       int64  `json:"resyncs"`
	Epoch         uint64 `json:"epoch"`
	Failovers     int64  `json:"failovers"`
	FencedAppends int64  `json:"fenced_appends"`
}

// HistogramStats summarizes a latency distribution in microseconds.
type HistogramStats struct {
	Count  int64 `json:"count"`
	MeanUS int64 `json:"mean_us"`
	P50US  int64 `json:"p50_us"`
	P99US  int64 `json:"p99_us"`
	MaxUS  int64 `json:"max_us"`
}

// FanoutStats summarizes a small-integer distribution (storage reads per
// page materialization).
type FanoutStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

func histogramStats(s metrics.HistogramSnapshot) HistogramStats {
	return HistogramStats{Count: s.Count, MeanUS: s.MeanUS, P50US: s.P50US, P99US: s.P99US, MaxUS: s.MaxUS}
}

func fanoutStats(s metrics.IntHistogramSnapshot) FanoutStats {
	return FanoutStats{Count: s.Count, Mean: s.Mean, P50: s.P50, P99: s.P99, Max: s.Max}
}

// Stats returns a snapshot.
func (db *DB) Stats() Stats {
	ss := db.store.Stats()
	fs := db.eng().Forest().Stats()
	m := db.eng().Mapping()
	hits, misses := m.CacheStats()
	raIssued, raHits := m.ReadaheadStats()
	var ratio float64
	if hits+misses > 0 {
		ratio = float64(hits) / float64(hits+misses)
	}
	gcs := db.eng().GCStats()
	s := Stats{
		Storage: StorageStats{
			ReadOps:         ss.ReadOps,
			WriteOps:        ss.WriteOps,
			BytesRead:       ss.BytesRead,
			BytesWritten:    ss.BytesWritten,
			BatchReads:      ss.BatchReads,
			BatchLocs:       ss.BatchLocs,
			BatchRoundTrips: ss.BatchRoundTrips,
			LiveBytes:       ss.LiveBytes,
			TotalBytes:      ss.TotalBytes,
			ExtentCount:     ss.ExtentCount,
			FaultsInjected:  metrics.Faults.FaultsInjected.Load(),
			FaultRetries:    metrics.Faults.Retries.Load(),
			FaultRecoveries: metrics.Faults.Recoveries.Load(),
		},
		Cache: CacheStats{
			Hits:            hits,
			Misses:          misses,
			CoalescedMisses: m.CoalescedMisses(),
			HitRatio:        ratio,
			Shards:          m.ShardCount(),
			Evictions:       m.Evictions(),
			ReadaheadIssued: raIssued,
			ReadaheadHits:   raHits,
			ReadFanout:      fanoutStats(m.ReadFanout().Summary()),
			MaterializeLat:  histogramStats(m.MaterializeLatency().Summary()),
			Pages:           int64(m.PageCount()),
			MemoryBytes:     fs.MemoryBytes,
		},
		Forest: ForestStats{
			Trees:      fs.Trees,
			Owners:     fs.Owners,
			InitKeys:   fs.InitKeys,
			Migrations: fs.Migrations,
		},
		EdgeBlocks: func() EdgeBlockStats {
			bs := m.BlockStatsSnapshot()
			return EdgeBlockStats{
				Builds:      bs.Builds,
				SkippedPins: bs.SkippedPins,
				Hits:        bs.Hits,
				Fallbacks:   bs.Fallbacks,
				Entries:     bs.Entries,
				Bytes:       bs.Bytes,
				Parts:       bs.Parts,
			}
		}(),
		GC: GCStats{
			BytesMoved:       ss.GCBytesMoved,
			BytesReclaimed:   ss.GCBytesReclaimed,
			WriteAmp:         ss.GCWriteAmp(),
			Runs:             gcs.Runs,
			ExtentsReclaimed: ss.ExtentsReclaimed,
			ExtentsExpired:   ss.ExtentsExpired,
			PinDeferred:      gcs.PinDeferred,
			BlockPinned:      gcs.BlockPinned,
		},
	}
	if src := db.eng().Epochs(); src != nil {
		es := src.Stats()
		s.MVCC = MVCCStats{
			ReadEpoch:     uint64(es.Current),
			PinnedEpochs:  es.Pinned,
			EpochLag:      es.Lag,
			PinsTotal:     es.PinsTotal,
			RetainedBytes: db.eng().RetainedBytes(),
		}
	}
	if rw := db.leader(); rw != nil {
		batches, records := rw.LoggerStats()
		s.WAL = WALStats{
			Appends:             rw.Writer().Appends(),
			AppendLatency:       histogramStats(rw.Writer().AppendLatency().Summary()),
			CommitBatches:       batches,
			CommitRecords:       records,
			CommitLatency:       histogramStats(rw.Logger().CommitLatency().Summary()),
			GroupSize:           fanoutStats(rw.Logger().GroupSize().Summary()),
			GroupStall:          histogramStats(rw.Logger().StallLatency().Summary()),
			InflightGroups:      rw.Logger().InflightGroups(),
			PipelineDepth:       rw.Logger().PipelineDepth(),
			AckReorder:          histogramStats(rw.Logger().AckReorder().Summary()),
			PipelineUtilization: fanoutStats(rw.Logger().InflightUtilization().Summary()),
			LastLSN:             uint64(rw.LastLSN()),
			Checkpoints:         rw.Checkpoints(),
		}
		s.Replication = ReplicationStats{
			Replicas:      db.replicaCount(),
			AppliedLSNLag: db.replicationLag(),
			Resyncs:       db.replicaResyncs(),
			Epoch:         rw.Epoch(),
			Failovers:     db.failovers.Load(),
			FencedAppends: ss.FencedAppends,
		}
	}
	return s
}

func (db *DB) replicaCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.replicas)
}

// replicationLag returns the worst applied-LSN lag across the attached
// replicas relative to the leader's last assigned LSN.
func (db *DB) replicationLag() uint64 {
	if db.leader() == nil {
		return 0
	}
	last := uint64(db.leader().LastLSN())
	db.mu.Lock()
	replicas := append([]*Replica(nil), db.replicas...)
	db.mu.Unlock()
	var worst uint64
	for _, r := range replicas {
		applied := r.AppliedLSN()
		if applied < last && last-applied > worst {
			worst = last - applied
		}
	}
	return worst
}

func (db *DB) replicaResyncs() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var n int64
	for _, r := range db.replicas {
		n += r.Resyncs()
	}
	return n
}

// Metrics exposes the database's metrics registry: every subsystem
// (storage, WAL, cache, forest, GC, replication) registers its instruments
// here. Useful for scraping or registering additional application gauges.
func (db *DB) Metrics() *metrics.Registry { return db.eng().Metrics() }

// StatsJSON renders the full metrics registry as stable, sorted JSON.
func (db *DB) StatsJSON() ([]byte, error) { return db.eng().Metrics().Snapshot().JSON() }

// StatsText renders the full metrics registry as sorted, aligned text.
func (db *DB) StatsText() string { return db.eng().Metrics().Snapshot().Text() }
