package bg3

import (
	"sync"
	"time"

	"bg3/internal/graph"
	"bg3/internal/pattern"
	"bg3/internal/replication"
)

// ClusterDB is a multi-RW BG3 deployment (§3.1): writes are distributed
// across distinct RW nodes by hashing the source vertex, each shard owns
// its own shared-storage volume and WAL. Attach ReadView instances to
// scale strongly consistent reads across follower nodes.
type ClusterDB struct {
	opts    Options
	cluster *replication.Cluster

	mu    sync.Mutex // guards views
	views []*ReadView
}

var _ Store = (*ClusterDB)(nil)

// OpenCluster creates a BG3 cluster with the given number of RW shards.
// A nil opts uses defaults; the Replicated field is implied.
func OpenCluster(shards int, opts *Options) (*ClusterDB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	fi := o.FlushInterval
	if fi <= 0 {
		fi = 50 * time.Millisecond
	}
	co := o.coreOptions()
	co.Storage = nil
	c, err := replication.NewCluster(shards, o.storageOptions(), replication.RWOptions{
		Engine:         co,
		CommitWindow:   o.CommitWindow,
		FlushInterval:  fi,
		FlushThreshold: o.FlushThreshold,
	})
	if err != nil {
		return nil, err
	}
	return &ClusterDB{opts: o, cluster: c}, nil
}

// Close stops every shard and attached read view.
func (c *ClusterDB) Close() {
	c.mu.Lock()
	views := c.views
	c.views = nil
	c.mu.Unlock()
	for _, v := range views {
		v.Stop()
	}
	c.cluster.Stop()
}

// Shards returns the number of RW nodes.
func (c *ClusterDB) Shards() int { return c.cluster.Shards() }

// AddVertex upserts a vertex on its owning shard.
func (c *ClusterDB) AddVertex(v Vertex) error { return c.cluster.AddVertex(v) }

// GetVertex fetches a vertex from its owning shard.
func (c *ClusterDB) GetVertex(id VertexID, typ VertexType) (Vertex, bool, error) {
	return c.cluster.GetVertex(id, typ)
}

// AddEdge upserts an edge on the shard owning its source vertex.
func (c *ClusterDB) AddEdge(e Edge) error { return c.cluster.AddEdge(e) }

// GetEdge fetches one edge.
func (c *ClusterDB) GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error) {
	return c.cluster.GetEdge(src, typ, dst)
}

// DeleteEdge removes one edge.
func (c *ClusterDB) DeleteEdge(src VertexID, typ EdgeType, dst VertexID) error {
	return c.cluster.DeleteEdge(src, typ, dst)
}

// Neighbors streams src's out-neighbors from its owning shard.
func (c *ClusterDB) Neighbors(src VertexID, typ EdgeType, limit int, fn func(VertexID, Properties) bool) error {
	return c.cluster.Neighbors(src, typ, limit, fn)
}

// Degree returns src's out-degree.
func (c *ClusterDB) Degree(src VertexID, typ EdgeType) (int, error) {
	return c.cluster.Degree(src, typ)
}

// KHop expands multi-hop neighborhoods across shards.
func (c *ClusterDB) KHop(start VertexID, typ EdgeType, hops, perVertexLimit int) (map[VertexID]struct{}, error) {
	return graph.KHop(c.cluster, start, typ, hops, perVertexLimit)
}

// Checkpoint flushes and checkpoints every shard.
func (c *ClusterDB) Checkpoint() error { return c.cluster.Checkpoint() }

// ReadView is a strongly consistent, read-only view of a ClusterDB: one
// follower per shard, reads routed by the cluster's hash.
type ReadView struct {
	view *replication.ReadView
}

// OpenReadView attaches one follower node per shard.
func (c *ClusterDB) OpenReadView() (*ReadView, error) {
	interval := c.opts.ReplicaPollInterval
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	v, err := c.cluster.OpenReadView(interval, c.opts.ReplicaCacheCapacity)
	if err != nil {
		return nil, err
	}
	rv := &ReadView{view: v}
	c.mu.Lock()
	c.views = append(c.views, rv)
	c.mu.Unlock()
	return rv, nil
}

// Stop detaches the view's followers.
func (v *ReadView) Stop() { v.view.Stop() }

// Sync drains every shard's WAL so subsequent reads observe everything
// acknowledged so far.
func (v *ReadView) Sync() error { return v.view.Sync() }

// GetVertex fetches a vertex.
func (v *ReadView) GetVertex(id VertexID, typ VertexType) (Vertex, bool, error) {
	return v.view.GetVertex(id, typ)
}

// GetEdge fetches one edge.
func (v *ReadView) GetEdge(src VertexID, typ EdgeType, dst VertexID) (Edge, bool, error) {
	return v.view.GetEdge(src, typ, dst)
}

// Neighbors streams out-neighbors.
func (v *ReadView) Neighbors(src VertexID, typ EdgeType, limit int, fn func(VertexID, Properties) bool) error {
	return v.view.Neighbors(src, typ, limit, fn)
}

// Degree returns out-degree.
func (v *ReadView) Degree(src VertexID, typ EdgeType) (int, error) {
	return v.view.Degree(src, typ)
}

// KHop expands multi-hop neighborhoods on the followers.
func (v *ReadView) KHop(start VertexID, typ EdgeType, hops, perVertexLimit int) (map[VertexID]struct{}, error) {
	return graph.KHop(v.view.AsStore(), start, typ, hops, perVertexLimit)
}

// MatchPattern runs subgraph matching on the followers.
func (v *ReadView) MatchPattern(p Pattern, seeds []VertexID, maxMatches int) ([][]VertexID, error) {
	return pattern.Match(v.view.AsStore(), p, seeds, maxMatches)
}

// FindCycles runs loop detection on the followers.
func (v *ReadView) FindCycles(start VertexID, typ EdgeType, maxLen, maxCycles int) ([][]VertexID, error) {
	return pattern.FindCycles(v.view.AsStore(), start, typ, maxLen, maxCycles)
}
