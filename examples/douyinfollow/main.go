// Douyin-follow example: the paper's flagship serving workload (Table 1) —
// a follow graph with power-law popularity, 99% one-hop reads and 1% edge
// inserts. Demonstrates the Bw-tree forest in action: popular creators
// cross the split threshold and migrate to dedicated Bw-trees, diluting
// write conflicts (§3.2.1).
//
//	go run ./examples/douyinfollow
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	bg3 "bg3"
)

const (
	users          = 20_000
	preloadFollows = 150_000
	splitThreshold = 256
)

func main() {
	db, err := bg3.Open(&bg3.Options{
		// Creators whose follower list outgrows the threshold get a
		// dedicated Bw-tree.
		ForestSplitThreshold: splitThreshold,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Build the follow graph: "follower follows creator", with creator
	// popularity drawn from a power law — a handful of celebrities collect
	// most follows, exactly the skew the forest design targets. Edges are
	// stored under the *creator* (fan-out list of followers), mirroring
	// the paper's "enumerate all followers of a particular user" query.
	rng := rand.New(rand.NewSource(42))
	zipf := rand.NewZipf(rng, 1.3, 1, users-1)
	fmt.Printf("ingesting %d follow records...\n", preloadFollows)
	start := time.Now()
	for i := 0; i < preloadFollows; i++ {
		creator := bg3.VertexID(zipf.Uint64())
		follower := bg3.VertexID(rng.Intn(users))
		if err := db.AddEdge(bg3.Edge{
			Src: creator, Dst: follower, Type: bg3.ETypeFollow,
			Props: bg3.Properties{{Name: "ts", Value: []byte(fmt.Sprint(i))}},
		}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("ingest done in %v (%.0f inserts/s)\n",
		time.Since(start).Round(time.Millisecond),
		preloadFollows/time.Since(start).Seconds())

	// The forest after ingest: hot creators live in their own trees.
	s := db.Stats()
	fmt.Printf("forest: %d Bw-trees (%d owners seen, %d migrations, %d keys left in INIT)\n",
		s.Forest.Trees, s.Forest.Owners, s.Forest.Migrations, s.Forest.InitKeys)

	// Celebrity lookups: follower counts of the hottest creators.
	fmt.Println("top creators by follower count:")
	for id := bg3.VertexID(0); id < 5; id++ {
		deg, err := db.Degree(id, bg3.ETypeFollow)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  creator %d: %d followers\n", id, deg)
	}

	// The serving mix: 99% "list followers (first page)" / 1% insert.
	const serveOps = 50_000
	fmt.Printf("serving %d operations (99%% read / 1%% write)...\n", serveOps)
	start = time.Now()
	reads, writes := 0, 0
	for i := 0; i < serveOps; i++ {
		if rng.Intn(100) == 0 {
			creator := bg3.VertexID(zipf.Uint64())
			if err := db.AddEdge(bg3.Edge{Src: creator, Dst: bg3.VertexID(rng.Intn(users)), Type: bg3.ETypeFollow}); err != nil {
				log.Fatal(err)
			}
			writes++
		} else {
			creator := bg3.VertexID(zipf.Uint64())
			if err := db.Neighbors(creator, bg3.ETypeFollow, 20, func(bg3.VertexID, bg3.Properties) bool { return true }); err != nil {
				log.Fatal(err)
			}
			reads++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("served %d reads + %d writes in %v (%.0f ops/s)\n",
		reads, writes, elapsed.Round(time.Millisecond), serveOps/elapsed.Seconds())
}
