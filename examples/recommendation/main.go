// Douyin-recommendation example: the read-only multi-hop workload of
// Table 1 — generate candidate subgraphs for a recommendation model by
// expanding 1–3 hops from a user (70% 1-hop, 20% 2-hop, 10% 3-hop).
//
//	go run ./examples/recommendation
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	bg3 "bg3"
)

const (
	users       = 10_000
	videos      = 40_000
	likeEdges   = 120_000
	followEdges = 60_000
)

func main() {
	db, err := bg3.Open(&bg3.Options{ForestSplitThreshold: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Bipartite-ish interest graph: users follow users, users like videos.
	// Video IDs live above the user ID space.
	rng := rand.New(rand.NewSource(11))
	userZipf := rand.NewZipf(rng, 1.2, 1, users-1)
	videoZipf := rand.NewZipf(rng, 1.2, 1, videos-1)

	fmt.Println("building the interest graph...")
	for i := 0; i < followEdges; i++ {
		src := bg3.VertexID(rng.Intn(users))
		dst := bg3.VertexID(userZipf.Uint64())
		if src == dst {
			continue
		}
		if err := db.AddEdge(bg3.Edge{Src: src, Dst: dst, Type: bg3.ETypeFollow}); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < likeEdges; i++ {
		user := bg3.VertexID(rng.Intn(users))
		video := bg3.VertexID(users + int(videoZipf.Uint64()))
		if err := db.AddEdge(bg3.Edge{Src: user, Dst: video, Type: bg3.ETypeLike}); err != nil {
			log.Fatal(err)
		}
	}

	// The serving loop: draw a user, expand 1–3 hops over the follow
	// graph, then collect the liked videos of the reached users — the
	// candidate subgraph handed to the ranking model downstream.
	const queries = 5_000
	fmt.Printf("serving %d recommendation queries...\n", queries)
	hopHist := map[int]int{}
	var candidates int
	start := time.Now()
	for i := 0; i < queries; i++ {
		user := bg3.VertexID(rng.Intn(users))
		hops := 1
		switch p := rng.Intn(100); {
		case p < 70:
			hops = 1
		case p < 90:
			hops = 2
		default:
			hops = 3
		}
		hopHist[hops]++
		reached, err := db.KHop(user, bg3.ETypeFollow, hops, 16)
		if err != nil {
			log.Fatal(err)
		}
		seen := map[bg3.VertexID]struct{}{}
		collect := func(u bg3.VertexID) error {
			return db.Neighbors(u, bg3.ETypeLike, 8, func(video bg3.VertexID, _ bg3.Properties) bool {
				seen[video] = struct{}{}
				return true
			})
		}
		if err := collect(user); err != nil {
			log.Fatal(err)
		}
		for u := range reached {
			if err := collect(u); err != nil {
				log.Fatal(err)
			}
		}
		candidates += len(seen)
	}
	elapsed := time.Since(start)
	fmt.Printf("hop mix: 1-hop=%d 2-hop=%d 3-hop=%d\n", hopHist[1], hopHist[2], hopHist[3])
	fmt.Printf("avg candidate videos per query: %.1f\n", float64(candidates)/queries)
	fmt.Printf("throughput: %.0f queries/s (%v total)\n", queries/elapsed.Seconds(), elapsed.Round(time.Millisecond))

	s := db.Stats()
	fmt.Printf("engine: %d trees, %.1f MB written, %.1f MB live\n",
		s.Forest.Trees, float64(s.Storage.BytesWritten)/(1<<20), float64(s.Storage.LiveBytes)/(1<<20))
}
