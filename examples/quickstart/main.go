// Quickstart: open a BG3 database, write a small social graph, and read it
// back — the minimal end-to-end use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	bg3 "bg3"
)

func main() {
	// An in-process BG3 instance with defaults: read-optimized Bw-trees on
	// append-only storage, workload-aware GC, no replication.
	db, err := bg3.Open(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Vertices carry typed property lists.
	users := []string{"alice", "bob", "carol"}
	for i, name := range users {
		if err := db.AddVertex(bg3.Vertex{
			ID:    bg3.VertexID(i + 1),
			Type:  bg3.VTypeUser,
			Props: bg3.Properties{{Name: "name", Value: []byte(name)}},
		}); err != nil {
			log.Fatal(err)
		}
	}

	// Directed, typed edges: alice follows bob and carol; bob follows carol.
	follows := [][2]bg3.VertexID{{1, 2}, {1, 3}, {2, 3}}
	for _, f := range follows {
		if err := db.AddEdge(bg3.Edge{
			Src: f[0], Dst: f[1], Type: bg3.ETypeFollow,
			Props: bg3.Properties{{Name: "since", Value: []byte("2024")}},
		}); err != nil {
			log.Fatal(err)
		}
	}

	// One-hop: who does alice follow?
	fmt.Print("alice follows:")
	if err := db.Neighbors(1, bg3.ETypeFollow, 0, func(dst bg3.VertexID, _ bg3.Properties) bool {
		v, _, _ := db.GetVertex(dst, bg3.VTypeUser)
		name, _ := v.Props.Get("name")
		fmt.Printf(" %s", name)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	// Point lookup with properties.
	if e, ok, _ := db.GetEdge(1, bg3.ETypeFollow, 2); ok {
		since, _ := e.Props.Get("since")
		fmt.Printf("alice -> bob since %s\n", since)
	}

	// Multi-hop expansion.
	reached, err := db.KHop(1, bg3.ETypeFollow, 2, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within 2 hops of alice: %d vertices\n", len(reached))

	// Engine statistics: everything is persisted out-of-place on the
	// append-only store.
	s := db.Stats()
	fmt.Printf("storage writes: %d ops, %d bytes\n", s.Storage.WriteOps, s.Storage.BytesWritten)
}
