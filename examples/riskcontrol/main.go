// Financial-risk-control example: the paper's anti-money-laundering
// workload (Table 1, §2.6). Transfers stream into a replicated BG3
// instance; a read-only replica — strongly consistent thanks to the WAL
// shipped over shared storage (§3.4) — runs loop detection and subgraph
// pattern matching on the freshest data, the way ByteDance scales this
// analysis across RO nodes.
//
//	go run ./examples/riskcontrol
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	bg3 "bg3"
)

func main() {
	db, err := bg3.Open(&bg3.Options{
		Replicated:          true,
		FlushInterval:       20 * time.Millisecond,
		ReplicaPollInterval: 2 * time.Millisecond,
		// Audit data expires shortly after reconciliation (§4.4): TTL lets
		// the store drop whole extents instead of relocating them.
		TTL: 2 * time.Minute,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The analyst's replica: reads scale out without touching the writer.
	replica, err := db.OpenReplica()
	if err != nil {
		log.Fatal(err)
	}

	// Stream transfers between accounts. Hidden in the noise: two money
	// loops, the structures AML analysis hunts for.
	const accounts = 2_000
	rng := rand.New(rand.NewSource(7))
	fmt.Println("ingesting transfer stream...")
	for i := 0; i < 20_000; i++ {
		src := bg3.VertexID(rng.Intn(accounts))
		dst := bg3.VertexID(rng.Intn(accounts))
		if src == dst {
			continue
		}
		if err := db.AddEdge(bg3.Edge{
			Src: src, Dst: dst, Type: bg3.ETypeTransfer,
			Props: bg3.Properties{{Name: "amount", Value: []byte(fmt.Sprint(rng.Intn(10_000)))}},
		}); err != nil {
			log.Fatal(err)
		}
	}
	// Planted loops: 100 -> 101 -> 102 -> 100 and 200 -> 201 -> 200.
	for _, e := range [][2]bg3.VertexID{
		{9100, 9101}, {9101, 9102}, {9102, 9100},
		{9200, 9201}, {9201, 9200},
	} {
		if err := db.AddEdge(bg3.Edge{Src: e[0], Dst: e[1], Type: bg3.ETypeTransfer}); err != nil {
			log.Fatal(err)
		}
	}

	// Strong consistency: after Sync the replica reflects every
	// acknowledged write — no waiting for eventual convergence, no data
	// lost to forwarding failures (Fig. 12).
	if err := replica.Sync(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("running loop detection on the replica...")
	for _, suspect := range []bg3.VertexID{9100, 9200, 42} {
		cycles, err := replica.FindCycles(suspect, bg3.ETypeTransfer, 4, 10)
		if err != nil {
			log.Fatal(err)
		}
		if len(cycles) == 0 {
			fmt.Printf("  account %d: clean\n", suspect)
			continue
		}
		for _, c := range cycles {
			fmt.Printf("  account %d: ALERT transfer loop", suspect)
			for _, v := range c {
				fmt.Printf(" %d ->", v)
			}
			fmt.Printf(" %d\n", c[0])
		}
	}

	// Pattern matching: fan-in/fan-out "mule" shape a -> b -> c where the
	// same anchor also pays c directly.
	fmt.Println("matching triangle patterns around account 9100...")
	tri := bg3.Pattern{N: 3, Edges: []bg3.PatternEdge{
		{From: 0, To: 1, Type: bg3.ETypeTransfer},
		{From: 1, To: 2, Type: bg3.ETypeTransfer},
		{From: 2, To: 0, Type: bg3.ETypeTransfer},
	}}
	matches, err := replica.MatchPattern(tri, []bg3.VertexID{9100}, 10)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("  triangle: %v\n", m)
	}
	fmt.Printf("%d pattern matches\n", len(matches))
}
