// TTL-window example: time-windowed behaviour tracking (§3.3 Observation
// 2). User browsing events are only useful for a bounded window; BG3's
// extent-granular TTL lets whole extents expire untouched — zero
// write-amplification reclamation — instead of relocating doomed data.
//
//	go run ./examples/ttlwindow
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	bg3 "bg3"
)

func main() {
	const window = 800 * time.Millisecond // the behaviour window (paper: minutes to days)

	db, err := bg3.Open(&bg3.Options{
		TTL:        window,
		ExtentSize: 64 << 10,
		// Background reclamation with the workload-aware policy: extents
		// whose TTL is about to free them are bypassed, not compacted.
		GCInterval: 20 * time.Millisecond,
		GCBatch:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(5))
	ingest := func(round int, events int) {
		for i := 0; i < events; i++ {
			user := bg3.VertexID(rng.Intn(2000))
			video := bg3.VertexID(100_000 + rng.Intn(50_000))
			if err := db.AddEdge(bg3.Edge{
				Src: user, Dst: video, Type: bg3.ETypeLike,
				Props: bg3.Properties{{Name: "round", Value: []byte(fmt.Sprint(round))}},
			}); err != nil {
				log.Fatal(err)
			}
		}
	}

	fmt.Printf("ingesting browse events with a %v retention window...\n", window)
	for round := 0; round < 4; round++ {
		ingest(round, 20_000)
		s := db.Stats()
		fmt.Printf("round %d: live=%.1fMB resident=%.1fMB expired-extents=%d gc-moved=%.2fMB\n",
			round,
			float64(s.Storage.LiveBytes)/(1<<20),
			float64(s.Storage.TotalBytes)/(1<<20),
			s.GC.ExtentsExpired,
			float64(s.GC.BytesMoved)/(1<<20))
		time.Sleep(window / 2)
	}

	// Let the window lapse entirely: everything ingested expires without a
	// byte of relocation.
	time.Sleep(window + 100*time.Millisecond)
	if _, err := db.RunGC(16); err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Printf("after the window lapsed: live=%.1fMB resident=%.1fMB expired-extents=%d gc-moved=%.2fMB\n",
		float64(s.Storage.LiveBytes)/(1<<20),
		float64(s.Storage.TotalBytes)/(1<<20),
		s.GC.ExtentsExpired,
		float64(s.GC.BytesMoved)/(1<<20))
	fmt.Println("expiry freed space wholesale — the Table 2 '+TTL => 0 MB/s' behaviour")
}
