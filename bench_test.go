package bg3_test

// Benchmark targets regenerating every table and figure of the paper's
// evaluation (§4). Each benchmark runs the corresponding experiment from
// internal/experiments at Small scale once per b.N iteration and reports
// the headline quantity as a custom metric, so `go test -bench=.` prints a
// row per paper artifact. The bg3-bench command runs the same experiments
// at larger scales with full paper-style tables.

import (
	"fmt"
	"io"
	"testing"
	"time"

	bg3 "bg3"
	"bg3/internal/bwtree"
	"bg3/internal/experiments"
	"bg3/internal/storage"
	"bg3/internal/workload"
)

// BenchmarkFigure8Vertical regenerates Fig. 8's single-machine half:
// throughput of BG3 / ByteGraph / Neptune-sim per workload at a 8-vCPU
// worker cap. Reported metrics: <workload>-<system> KQPS.
func BenchmarkFigure8Vertical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8Vertical(experiments.Small, []int{8}, io.Discard)
		for _, r := range rows {
			b.ReportMetric(r.Throughput/1000, fmt.Sprintf("%s/%s-KQPS", r.Workload, r.System))
		}
	}
}

// BenchmarkFigure8Horizontal regenerates Fig. 8's multi-node half at 2 and
// 4 nodes.
func BenchmarkFigure8Horizontal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8Horizontal(experiments.Small, []int{2, 4}, io.Discard)
		for _, r := range rows {
			b.ReportMetric(r.Throughput/1000, fmt.Sprintf("%s/%s/n%d-KQPS", r.Workload, r.System, r.Scale))
		}
	}
}

// BenchmarkFigure9ReadAmplification regenerates Fig. 9: storage reads per
// client read with a zero-size cache, traditional vs read-optimized.
func BenchmarkFigure9ReadAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9ReadAmplification(experiments.Small, io.Discard)
		b.ReportMetric(res[0].Amplification, "traditional-amp")
		b.ReportMetric(res[1].Amplification, "read-optimized-amp")
	}
}

// BenchmarkFigure10WriteBandwidth regenerates Fig. 10: total bytes written
// by a write-only power-law load, traditional vs read-optimized.
func BenchmarkFigure10WriteBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10WriteBandwidth(experiments.Small, io.Discard)
		b.ReportMetric(float64(res[0].BytesWritten)/(1<<20), "traditional-MB")
		b.ReportMetric(float64(res[1].BytesWritten)/(1<<20), "read-optimized-MB")
		b.ReportMetric(100*(float64(res[1].BytesWritten)/float64(res[0].BytesWritten)-1), "overhead-pct")
	}
}

// BenchmarkFigure11ForestScaling regenerates Fig. 11: write QPS and memory
// as the number of Bw-trees grows.
func BenchmarkFigure11ForestScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig11ForestScaling(experiments.Small, []int{1, 64, 4096}, io.Discard)
		for _, r := range rows {
			b.ReportMetric(r.WriteQPS/1000, fmt.Sprintf("trees%d-KQPS", r.Trees))
			b.ReportMetric(float64(r.MemoryBytes)/(1<<20), fmt.Sprintf("trees%d-MB", r.Trees))
		}
	}
}

// BenchmarkTable2Gradient regenerates Table 2 (left): background GC
// bandwidth under FIFO / dirty-ratio / workload-aware on the follow-style
// churn workload.
func BenchmarkTable2Gradient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2SpaceReclamation(experiments.Small, io.Discard)
		b.ReportMetric(rows[0].MBPerSec, "fifo-MBps")
		b.ReportMetric(rows[1].MBPerSec, "dirty-ratio-MBps")
		b.ReportMetric(rows[2].MBPerSec, "gradient-MBps")
	}
}

// BenchmarkTable2TTL regenerates Table 2 (right): GC bandwidth with and
// without the TTL bypass on the risk-control ingest.
func BenchmarkTable2TTL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2SpaceReclamation(experiments.Small, io.Discard)
		b.ReportMetric(rows[3].MBPerSec, "dirty-ratio-MBps")
		b.ReportMetric(rows[4].MBPerSec, "ttl-MBps")
		b.ReportMetric(float64(rows[4].Expired), "ttl-extents-expired")
	}
}

// BenchmarkFigure12Recall regenerates Fig. 12: follower recall under
// packet loss, command forwarding vs WAL shipping.
func BenchmarkFigure12Recall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12Recall(experiments.Small, []float64{0.01, 0.05, 0.10}, io.Discard)
		for _, r := range rows {
			sys := "fwd"
			if r.System[:3] == "BG3" {
				sys = "wal"
			}
			b.ReportMetric(r.Recall, fmt.Sprintf("%s-loss%.0f%%-recall", sys, r.LossRate*100))
		}
	}
}

// BenchmarkFigure13SyncLatency regenerates Fig. 13: leader-follower
// latency across write loads.
func BenchmarkFigure13SyncLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13SyncLatency(experiments.Small, []int{500, 2000}, io.Discard)
		for _, r := range rows {
			b.ReportMetric(float64(r.SyncLatency.Microseconds())/1000,
				fmt.Sprintf("load%d-ms", r.TargetWriteQPS))
		}
	}
}

// BenchmarkFigure14ROScaling regenerates Fig. 14: aggregate read
// throughput and sync latency as followers scale out.
func BenchmarkFigure14ROScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig14ROScaling(experiments.Small, []int{1, 2}, io.Discard)
		for _, r := range rows {
			b.ReportMetric(r.ReadQPS/1000, fmt.Sprintf("1M%dF-readKQPS", r.RONodes))
			b.ReportMetric(float64(r.SyncLatency.Microseconds())/1000, fmt.Sprintf("1M%dF-ms", r.RONodes))
		}
	}
}

// BenchmarkStorageCost regenerates the §4.2 storage-cost comparison.
func BenchmarkStorageCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.StorageCost(experiments.Small, io.Discard)
		b.ReportMetric(100*(1-rows[0].RelativeCost/rows[1].RelativeCost), "saving-pct")
		b.ReportMetric(rows[0].WriteAmp, "bg3-write-amp")
		b.ReportMetric(rows[1].WriteAmp, "bytegraph-write-amp")
	}
}

// --- Engine-level micro-benchmarks (ablations) ---

// BenchmarkBG3Put measures raw single-threaded edge-insert latency through
// the public API.
func BenchmarkBG3Put(b *testing.B) {
	db, err := bg3.Open(&bg3.Options{ForestSplitThreshold: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.AddEdge(bg3.Edge{
			Src: bg3.VertexID(i % 1000), Dst: bg3.VertexID(i), Type: bg3.ETypeFollow,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBG3Neighbors measures one-hop neighbor enumeration on a warm
// cache.
func BenchmarkBG3Neighbors(b *testing.B) {
	db, err := bg3.Open(&bg3.Options{ForestSplitThreshold: 512})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 50_000; i++ {
		if err := db.AddEdge(bg3.Edge{
			Src: bg3.VertexID(i % 1000), Dst: bg3.VertexID(i), Type: bg3.ETypeFollow,
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := db.Neighbors(bg3.VertexID(i%1000), bg3.ETypeFollow, 64,
			func(bg3.VertexID, bg3.Properties) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeltaPolicies is the ablation for DESIGN.md's central design
// choice: read-optimized vs traditional delta handling on a mixed
// read/write key-value load at the Bw-tree level.
func BenchmarkDeltaPolicies(b *testing.B) {
	for _, policy := range []bwtree.DeltaPolicy{bwtree.ReadOptimized, bwtree.Traditional} {
		b.Run(policy.String(), func(b *testing.B) {
			st := storage.Open(&storage.Options{ExtentSize: 1 << 20})
			m := bwtree.NewMapping(0, false)
			tr, err := bwtree.New(m, st, bwtree.Config{Policy: policy}, nil)
			if err != nil {
				b.Fatal(err)
			}
			key := make([]byte, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range key {
					key[j] = byte(i >> (8 * j))
				}
				if i%4 == 0 {
					if err := tr.Put(key, key); err != nil {
						b.Fatal(err)
					}
				} else {
					if _, _, err := tr.Get(key); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkWorkloadGenerators measures the generator overhead itself so
// throughput numbers can be read net of it.
func BenchmarkWorkloadGenerators(b *testing.B) {
	gens := []workload.Generator{
		workload.NewDouyinFollow(100_000, 1),
		workload.NewRiskControl(100_000, 1),
		workload.NewRecommendation(100_000, 1),
	}
	for _, g := range gens {
		b.Run(g.Name(), func(b *testing.B) {
			gen := g.Clone(2)
			for i := 0; i < b.N; i++ {
				_ = gen.Next()
			}
		})
	}
}

// BenchmarkReplicaSyncLatency measures the end-to-end visibility latency
// of one write on an idle RW/RO pair (the floor under Fig. 13).
func BenchmarkReplicaSyncLatency(b *testing.B) {
	db, err := bg3.Open(&bg3.Options{
		Replicated:          true,
		ReplicaPollInterval: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	rep, err := db.OpenReplica()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := bg3.Edge{Src: 1, Dst: bg3.VertexID(i), Type: bg3.ETypeFollow}
		if err := db.AddEdge(e); err != nil {
			b.Fatal(err)
		}
		for {
			if _, ok, _ := rep.GetEdge(e.Src, e.Type, e.Dst); ok {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
	}
}
