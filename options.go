package bg3

import (
	"time"

	"bg3/internal/bwtree"
	"bg3/internal/core"
	"bg3/internal/gc"
	"bg3/internal/replication"
	"bg3/internal/storage"
)

// DeltaPolicy selects how the Bw-tree persists updates.
type DeltaPolicy int

// Delta policies.
const (
	// ReadOptimized keeps at most one merged delta per page, capping a
	// cold read at two storage accesses (BG3's default, §3.2.2).
	ReadOptimized DeltaPolicy = iota
	// Traditional chains one delta per update (the classic Bw-tree / SLED
	// behaviour), provided for comparison.
	Traditional
)

// GCPolicy selects the space-reclamation policy.
type GCPolicy int

// Space reclamation policies (§3.3).
const (
	// GCWorkloadAware prefers cold extents (low update gradient), breaks
	// ties by fragmentation, and skips extents TTL is about to free.
	GCWorkloadAware GCPolicy = iota
	// GCDirtyRatio always reclaims the most fragmented extent (ArkDB).
	GCDirtyRatio
	// GCFIFO reclaims the oldest extent (traditional Bw-tree systems).
	GCFIFO
)

// Options configures a DB. The zero value is a usable single-node,
// non-replicated database with BG3's defaults.
type Options struct {
	// DeltaPolicy selects the Bw-tree delta strategy. Default ReadOptimized.
	DeltaPolicy DeltaPolicy

	// ConsolidateNum is the delta count triggering page consolidation.
	// Default 10.
	ConsolidateNum int

	// MaxPageEntries is the leaf-page split threshold. Default 128.
	MaxPageEntries int

	// CacheCapacity bounds the number of leaf pages with resident content
	// (0 = unlimited).
	CacheCapacity int

	// CacheShards is the number of lock stripes in the page cache (rounded
	// up to a power of two). 0 derives the count from GOMAXPROCS.
	CacheShards int

	// ForestSplitThreshold moves a vertex to a dedicated Bw-tree once its
	// edge count exceeds it (§3.2.1). 0 keeps all vertices in the shared
	// INIT tree.
	ForestSplitThreshold int

	// ForestInitSizeThreshold caps the INIT tree's total key count,
	// evicting the largest vertex beyond it. 0 disables.
	ForestInitSizeThreshold int

	// EdgeBlockThreshold packs a dedicated tree's adjacency into a
	// contiguous CSR-style edge block once its live entry count exceeds
	// this value (§3.2.1 super-vertices). 0 uses the default (1024);
	// negative disables edge blocks entirely.
	EdgeBlockThreshold int

	// GC selects the reclamation policy. Default GCWorkloadAware.
	GC GCPolicy

	// GCInterval runs background reclamation at this period (0: manual
	// via RunGC only). GCBatch extents are reclaimed per cycle.
	GCInterval time.Duration
	GCBatch    int

	// TTL expires data wholesale after this lifetime (0: keep forever).
	TTL time.Duration

	// ExtentSize is the shared-store extent capacity in bytes.
	// Default 1 MiB.
	ExtentSize int

	// StorageReadLatency / StorageWriteLatency simulate cloud-storage
	// round trips (0: none).
	StorageReadLatency  time.Duration
	StorageWriteLatency time.Duration

	// Replicated enables the WAL pipeline so read-only replicas can be
	// attached with DB.OpenReplica. Writes are group-committed to the WAL
	// and pages are flushed in the background.
	Replicated bool

	// Shards partitions the vertex space across this many independent
	// shard groups when the database is opened with OpenSharded — each
	// shard gets its own shared-storage volume, WAL stream, group
	// committer, MVCC epoch clock, and leader. 0 or 1 means a single
	// shard. Ignored by Open. Sharded mode is always replicated (the WAL
	// pipeline is what gives each shard its epoch clock).
	Shards int

	// CommitWindow is the WAL group-commit accumulation window
	// (replicated mode; 0: commit as soon as the queue drains).
	CommitWindow time.Duration

	// CommitMaxBatch caps a WAL commit group and doubles as the size
	// trigger that cuts a flush before CommitWindow elapses (replicated
	// mode; 0: 64).
	CommitMaxBatch int

	// CommitQueueDepth bounds the group committer's pending queue; writers
	// beyond it block until a flush makes room (replicated mode; 0: 4096).
	CommitQueueDepth int

	// CommitPipelineDepth keeps up to this many WAL group appends in
	// flight concurrently (BtrLog-style commit pipelining). Storage
	// completions may land out of order, but commit acks always release in
	// LSN order (replicated mode; 0 or 1: serial appends, today's
	// behaviour).
	CommitPipelineDepth int

	// CommitAdaptivePipeline lets the committer resize its effective
	// pipeline depth and accumulation window between 1 and
	// CommitPipelineDepth, driven by queue-stall pressure and group fill
	// (replicated mode).
	CommitAdaptivePipeline bool

	// FlushInterval drives the background dirty-page flusher (replicated
	// mode; default 50ms). FlushThreshold additionally triggers a flush at
	// that many dirty pages.
	FlushInterval  time.Duration
	FlushThreshold int

	// ReplicaPollInterval is how often replicas tail the WAL.
	// Default 5ms.
	ReplicaPollInterval time.Duration

	// ReplicaCacheCapacity bounds each replica's page cache
	// (0 = unlimited).
	ReplicaCacheCapacity int

	// SnapshotInterval periodically persists a snapshot of the durable
	// state and trims the covered WAL prefix (replicated mode; 0 disables).
	// Snapshots bound both the WAL a new replica must replay and the
	// shared-storage space the WAL occupies.
	SnapshotInterval time.Duration
}

func (o Options) treeConfig() bwtree.Config {
	policy := bwtree.ReadOptimized
	if o.DeltaPolicy == Traditional {
		policy = bwtree.Traditional
	}
	blockMin := o.EdgeBlockThreshold
	if blockMin == 0 {
		blockMin = 1024
	}
	if blockMin < 0 {
		blockMin = 0 // disabled
	}
	return bwtree.Config{
		Policy:              policy,
		ConsolidateNum:      o.ConsolidateNum,
		MaxPageEntries:      o.MaxPageEntries,
		CacheCapacity:       o.CacheCapacity,
		CacheShards:         o.CacheShards,
		EdgeBlockMinEntries: blockMin,
	}
}

func (o Options) gcPolicy() gc.Policy {
	switch o.GC {
	case GCDirtyRatio:
		return gc.DirtyRatio{}
	case GCFIFO:
		return gc.FIFO{}
	default:
		return gc.WorkloadAware{TTL: o.TTL}
	}
}

func (o Options) storageOptions() *storage.Options {
	return &storage.Options{
		ExtentSize:   o.ExtentSize,
		ReadLatency:  o.StorageReadLatency,
		WriteLatency: o.StorageWriteLatency,
	}
}

func (o Options) coreOptions() core.Options {
	return core.Options{
		Storage:           o.storageOptions(),
		Tree:              o.treeConfig(),
		SplitThreshold:    o.ForestSplitThreshold,
		InitSizeThreshold: o.ForestInitSizeThreshold,
		GCPolicy:          o.gcPolicy(),
		TTL:               o.TTL,
		GCInterval:        o.GCInterval,
		GCBatch:           o.GCBatch,
	}
}

// rwOptions builds the replication.RWOptions a leader runs with — used at
// Open and again by Failover, so a promoted leader inherits exactly the
// configuration of the one it replaces.
func (o Options) rwOptions() replication.RWOptions {
	fi := o.FlushInterval
	if fi <= 0 {
		fi = 50 * time.Millisecond
	}
	co := o.coreOptions()
	co.Storage = nil
	return replication.RWOptions{
		Engine:           co,
		CommitWindow:     o.CommitWindow,
		MaxBatch:         o.CommitMaxBatch,
		QueueDepth:       o.CommitQueueDepth,
		PipelineDepth:    o.CommitPipelineDepth,
		AdaptivePipeline: o.CommitAdaptivePipeline,
		FlushInterval:    fi,
		FlushThreshold:   o.FlushThreshold,
	}
}
